//! Bounded-variable revised simplex — primal and dual — on a factorized
//! basis representation.
//!
//! The LP is brought into the computational form
//!
//! ```text
//!     minimize    c'x
//!     subject to  A x = b          (one slack column per row)
//!                 l ≤ x ≤ u        (bounds may be infinite)
//! ```
//!
//! Feasibility is obtained with an *artificial-variable phase 1*: every row
//! receives a pair of nonnegative artificial columns `p_i − q_i` whose sum is
//! minimized; the initial all-artificial basis is trivially feasible, so the
//! same bounded-variable pivoting loop serves both phases. After phase 1 the
//! artificials are fixed to zero and the loop continues with the real
//! objective from the current basis.
//!
//! Pricing is pluggable behind the [`Pricing`]
//! seam (partial pricing by default, Dantzig and Devex selectable; see
//! [`crate::pricing`]) with an automatic switch to Bland's rule when the
//! objective stalls (anti-cycling). The basis factorization is maintained
//! behind the [`Basis`] trait as sparse `ftran`/`btran` solves; the
//! default representation is the sparse LU of
//! [`SparseLu`](crate::basis::SparseLu) (Markowitz pivot selection,
//! product-form eta updates), with the dense explicit inverse of
//! [`crate::basis::DenseInverse`] retained as the differential oracle.
//! Selection: [`SimplexSolver::from_model_configured`] >
//! `LETDMA_BASIS`/`LETDMA_PRICING`/`LETDMA_REFACTOR` environment
//! variables > sparse/partial/per-basis-default. Custom representations
//! plug in via [`SimplexSolver::from_model_with_basis`].
//!
//! # Warm re-solves (dual simplex)
//!
//! A branch-and-bound child node differs from its parent LP by exactly one
//! variable bound, and the parent's optimal basis stays *dual feasible*
//! for the child. [`SimplexSolver::snapshot`] captures that basis as a
//! [`WarmBasis`]; [`SimplexSolver::warm_resolve`] re-installs it on the
//! child and runs a bounded-variable **dual simplex** (largest-violation
//! leaving rule, a Harris-style two-pass dual ratio test with
//! bound-flipping, the same [`Basis`] representation and refactorization
//! cadence as the primal loop). The warm path only ever certifies
//! *value-free* outcomes — "this node cannot beat the incumbent"
//! ([`WarmOutcome::Fathomed`]) or "this node is infeasible"
//! ([`WarmOutcome::Infeasible`]) — and hands everything else back to the
//! cold primal path ([`WarmOutcome::GiveUp`]), which keeps branch-and-bound
//! trajectories byte-identical with the warm path on or off (see
//! DESIGN.md §"Warm-started node re-solves").

// Index-based loops mirror the mathematical notation (rows i, columns j,
// groups g); iterator rewrites would obscure the correspondence.
#![allow(clippy::needless_range_loop)]
use std::time::{Duration, Instant};

use letdma_core::env;
use letdma_core::fault::{self, FaultSite};

use crate::basis::{Basis, BasisKind};
use crate::model::{Model, ObjectiveSense, Sense};
use crate::pricing::{DantzigPricing, Pricing, PricingRule};

/// Feasibility/optimality tolerance used throughout the solver.
pub const EPS: f64 = 1e-7;

/// Outcome of one LP solve.
#[derive(Debug, Clone, PartialEq)]
pub enum LpOutcome {
    /// Optimal solution found; values of the *structural* variables and the
    /// optimal objective (in minimization form of the original sense).
    Optimal {
        /// Per-variable values for the model's structural variables.
        values: Vec<f64>,
        /// Objective value in the model's own sense.
        objective: f64,
    },
    /// The constraints admit no solution.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
    /// The iteration limit was exceeded (numerical emergency brake).
    IterationLimit,
    /// The wall-clock deadline expired mid-solve.
    TimedOut,
    /// Numerical trouble stopped the solve: a from-scratch basis
    /// refactorization failed (singular basis matrix), so the maintained
    /// inverse can no longer be trusted. Treated by callers like
    /// [`IterationLimit`](Self::IterationLimit) — an emergency brake.
    Numerical,
}

/// Status of a column in the current basis partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ColStatus {
    Basic(usize),
    AtLower,
    AtUpper,
    /// Free nonbasic column resting at value zero.
    FreeZero,
}

/// Sparse column: (row, coefficient) pairs.
pub(crate) type Column = Vec<(usize, f64)>;

/// The computational-form LP plus simplex state.
pub struct SimplexSolver {
    /// Number of rows.
    m: usize,
    /// Total number of columns (structural + slack + 2·m artificial).
    n: usize,
    /// Number of structural columns (the model's own variables).
    n_struct: usize,
    /// Column-major sparse matrix.
    cols: Vec<Column>,
    /// Row right-hand sides.
    b: Vec<f64>,
    /// Phase-2 cost vector (minimization form), len `n`.
    cost: Vec<f64>,
    /// Lower/upper bounds, len `n`.
    lower: Vec<f64>,
    upper: Vec<f64>,
    /// Column status, len `n`.
    status: Vec<ColStatus>,
    /// Basis: column index per row.
    basis: Vec<usize>,
    /// Pluggable basis-factorization representation.
    basis_inv: Box<dyn Basis>,
    /// Pluggable entering-variable pricing strategy.
    pricing: Box<dyn Pricing>,
    /// Current values of all columns.
    x: Vec<f64>,
    /// Multiplier for converting the model objective to minimization.
    obj_scale: f64,
    /// Constant offset of the objective.
    obj_offset: f64,
    /// Iterations executed so far (across phases).
    pub iterations: u64,
    /// Hard iteration cap.
    pub iteration_limit: u64,
    /// Optional wall-clock deadline, checked periodically.
    pub deadline: Option<Instant>,
    /// Iterations spent in phase 1 of the most recent solve.
    pub phase1_iterations: u64,
    /// Bound-to-bound flips (steps without a basis change).
    pub bound_flips: u64,
    /// Refactorize after this many product-form updates (numerical-drift
    /// control for long solves; `u64::MAX` disables).
    pub refactor_interval: u64,
    /// Smallest pivot magnitude the ratio tests will accept (primal
    /// leaving pivot and dual entering pivot). The default `1e-9` matches
    /// the historical hard-coded threshold; the branch-and-bound numerical
    /// recovery escalates it (together with a tighter
    /// [`refactor_interval`](Self::refactor_interval)) when retrying a
    /// node whose first solve broke down, trading a slightly weaker
    /// ratio test for pivots that cannot blow up the maintained inverse.
    pub min_pivot: f64,
    /// Dual-simplex iterations executed by [`warm_resolve`]
    /// (kept separate from the primal [`iterations`] counter).
    ///
    /// [`warm_resolve`]: Self::warm_resolve
    /// [`iterations`]: Self::iterations
    pub dual_iterations: u64,
    /// Cap on dual iterations per [`warm_resolve`](Self::warm_resolve)
    /// call; hitting it falls back to the cold primal path, so the cap
    /// bounds the work wasted on nodes the warm path cannot certify.
    /// When the inherited bound starts far below the fathoming cutoff the
    /// loop further tightens this to a 48-iteration "hopeless gap" budget
    /// (see `dual_optimize`), since only an infeasibility certificate —
    /// found quickly or not at all — could still settle the node.
    pub dual_iteration_limit: u64,
    /// FTRAN solves performed (primal ratio-test columns, warm-start
    /// residuals, dual flip repairs and entering columns).
    pub ftran_calls: u64,
    /// BTRAN solves performed (pricing duals, dual pivot rows).
    pub btran_calls: u64,
    /// Columns priced by the pricing strategy (one per `eval` call — the
    /// work partial pricing saves shows up here).
    pub pricing_candidates: u64,
    /// Wall-clock spent refactorizing the basis from scratch.
    pub time_factorize: Duration,
    /// Wall-clock spent in `ftran`/`btran` solves and pivot updates.
    pub time_solve: Duration,
    /// Wall-clock spent choosing entering variables (reduced-cost scans).
    pub time_pricing: Duration,
    /// Runs the crash-basis constructor before phase 1 (see
    /// [`crate::crash`]): rows whose slack cannot absorb the starting
    /// residual try a singleton structural column before falling back to an
    /// artificial. Off by default — the crash changes pivot paths (never
    /// values), and the byte-identical trajectory regressions pin the
    /// default path.
    pub crash: bool,
    /// Structural columns the crash constructor placed into the starting
    /// basis of the most recent [`solve`](Self::solve) (zero when the
    /// crash is off or no row qualified).
    pub crash_columns: u64,
}

impl std::fmt::Debug for SimplexSolver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimplexSolver")
            .field("rows", &self.m)
            .field("cols", &self.n)
            .field("structural", &self.n_struct)
            .field("iterations", &self.iterations)
            .field("basis", &self.basis_inv)
            .finish()
    }
}

impl SimplexSolver {
    /// Builds the computational form from a model, using the model's
    /// *current* variable bounds (so branch-and-bound nodes can tighten
    /// bounds and rebuild). Basis representation, pricing rule and
    /// refactorization cadence resolve from the environment
    /// (`LETDMA_BASIS` / `LETDMA_PRICING` / `LETDMA_REFACTOR`), defaulting
    /// to sparse LU, partial pricing and the per-basis cadence.
    #[must_use]
    pub fn from_model(model: &Model) -> Self {
        Self::from_model_configured(
            model,
            BasisKind::resolve(None),
            PricingRule::resolve(None),
            env::resolve_override(env::REFACTOR_ENV, None),
        )
    }

    /// Like [`from_model`](Self::from_model) with every knob pinned by the
    /// caller (branch-and-bound resolves the environment once and passes
    /// the result here, so every node LP of a solve runs identically).
    /// A `None` `refactor_interval` defers to the basis representation's
    /// [`default_refactor_interval`](Basis::default_refactor_interval).
    #[must_use]
    pub fn from_model_configured(
        model: &Model,
        basis: BasisKind,
        pricing: PricingRule,
        refactor_interval: Option<u64>,
    ) -> Self {
        let mut solver = Self::from_model_with_basis(model, basis.instantiate());
        solver.pricing = pricing.instantiate();
        solver.pricing.reset(solver.n);
        if let Some(interval) = refactor_interval {
            solver.refactor_interval = interval;
        }
        solver
    }

    /// Like [`from_model`](Self::from_model) with an explicit basis
    /// representation (see [`crate::basis`]); the refactorization cadence
    /// starts at the representation's own default and the pricing rule
    /// resolves from the environment.
    #[must_use]
    pub fn from_model_with_basis(model: &Model, basis_inv: Box<dyn Basis>) -> Self {
        let m = model.num_constraints();
        let n_struct = model.num_vars();
        let n_slack = m;
        let n_art = 2 * m;
        let n = n_struct + n_slack + n_art;

        let mut cols: Vec<Column> = vec![Vec::new(); n];
        let mut b = vec![0.0; m];
        let mut lower = vec![0.0; n];
        let mut upper = vec![0.0; n];

        for (j, def) in model.vars.iter().enumerate() {
            lower[j] = def.lower;
            upper[j] = def.upper;
        }
        // Row equilibration: scaling a row by 1/max|coeff| leaves variable
        // values untouched but stops big-M rows (coefficients spanning many
        // orders of magnitude) from dominating the numerics.
        let row_scale: Vec<f64> = model
            .constraints
            .iter()
            .map(|cons| {
                let max = cons
                    .expr
                    .iter()
                    .map(|(_, c)| c.abs())
                    .fold(0.0f64, f64::max);
                if max > 0.0 {
                    1.0 / max
                } else {
                    1.0
                }
            })
            .collect();
        for (i, cons) in model.constraints.iter().enumerate() {
            for (v, coef) in cons.expr.iter() {
                cols[v.index()].push((i, coef * row_scale[i]));
            }
            b[i] = cons.rhs * row_scale[i];
            // Slack column.
            let s = n_struct + i;
            cols[s].push((i, 1.0));
            match cons.sense {
                Sense::Le => {
                    lower[s] = 0.0;
                    upper[s] = f64::INFINITY;
                }
                Sense::Ge => {
                    lower[s] = f64::NEG_INFINITY;
                    upper[s] = 0.0;
                }
                Sense::Eq => {
                    lower[s] = 0.0;
                    upper[s] = 0.0;
                }
            }
            // Artificial pair p_i (+1) and q_i (−1), both ≥ 0; their upper
            // bounds start open for phase 1 and are closed afterwards.
            let p = n_struct + n_slack + 2 * i;
            let q = p + 1;
            cols[p].push((i, 1.0));
            cols[q].push((i, -1.0));
            lower[p] = 0.0;
            upper[p] = f64::INFINITY;
            lower[q] = 0.0;
            upper[q] = f64::INFINITY;
        }

        let obj_scale = match model.sense {
            ObjectiveSense::Minimize => 1.0,
            ObjectiveSense::Maximize => -1.0,
        };
        let mut cost = vec![0.0; n];
        for (v, coef) in model.objective.iter() {
            cost[v.index()] = obj_scale * coef;
        }
        let obj_offset = model.objective.constant();

        let refactor_interval = basis_inv.default_refactor_interval();
        let mut pricing = PricingRule::resolve(None).instantiate();
        pricing.reset(n);
        Self {
            m,
            n,
            n_struct,
            cols,
            b,
            cost,
            lower,
            upper,
            status: vec![ColStatus::AtLower; n],
            basis: Vec::new(),
            basis_inv,
            pricing,
            x: vec![0.0; n],
            obj_scale,
            obj_offset,
            iterations: 0,
            iteration_limit: 200_000,
            deadline: None,
            phase1_iterations: 0,
            bound_flips: 0,
            refactor_interval,
            min_pivot: 1e-9,
            dual_iterations: 0,
            dual_iteration_limit: 500,
            ftran_calls: 0,
            btran_calls: 0,
            pricing_candidates: 0,
            time_factorize: Duration::ZERO,
            time_solve: Duration::ZERO,
            time_pricing: Duration::ZERO,
            crash: false,
            crash_columns: 0,
        }
    }

    /// Basis changes (entering/leaving pivots) applied so far.
    #[must_use]
    pub fn pivots(&self) -> u64 {
        self.basis_inv.pivots()
    }

    /// Basis refactorizations performed so far.
    #[must_use]
    pub fn refactorizations(&self) -> u64 {
        self.basis_inv.refactorizations()
    }

    /// Total eta-file nonzeros appended by pivot updates (zero for the
    /// dense inverse; see [`Basis::eta_nonzeros`]).
    #[must_use]
    pub fn eta_nonzeros(&self) -> u64 {
        self.basis_inv.eta_nonzeros()
    }

    /// `(Σ nnz(L+U), Σ nnz(B))` over this solver's refactorizations — the
    /// fill-in ratio numerator/denominator (see [`Basis::fill_nonzeros`]).
    #[must_use]
    pub fn fill_nonzeros(&self) -> (u64, u64) {
        self.basis_inv.fill_nonzeros()
    }

    /// Solves the LP relaxation from scratch (phase 1 then phase 2).
    #[must_use]
    pub fn solve(&mut self) -> LpOutcome {
        if self.m == 0 {
            return self.solve_unconstrained();
        }
        if !self.initialize_artificial_basis() {
            // The crash diagonal failed to refactorize (a true diagonal
            // never does; reachable through fault injection): rebuild the
            // plain slack/artificial basis and run without the crash.
            let crash = std::mem::replace(&mut self.crash, false);
            let ok = self.initialize_artificial_basis();
            self.crash = crash;
            if !ok {
                return LpOutcome::Numerical;
            }
        }

        // Phase 1: minimize the sum of artificials.
        let mut phase1_cost = vec![0.0; self.n];
        for j in self.artificial_columns() {
            phase1_cost[j] = 1.0;
        }
        let phase1_result = self.optimize(&phase1_cost);
        self.phase1_iterations = self.iterations;
        match phase1_result {
            PivotResult::Optimal => {}
            PivotResult::Unbounded => {
                // Σ artificials ≥ 0 can never be unbounded below.
                unreachable!("phase 1 objective is bounded below by zero");
            }
            PivotResult::IterationLimit => return LpOutcome::IterationLimit,
            PivotResult::TimedOut => return LpOutcome::TimedOut,
            PivotResult::Numerical => return LpOutcome::Numerical,
        }
        self.phase1_iterations = self.iterations;
        let infeasibility: f64 = self.artificial_columns().map(|j| self.x[j]).sum();
        if infeasibility > 1e-6 {
            return LpOutcome::Infeasible;
        }
        // Close the artificials so phase 2 cannot reopen them.
        for j in self.artificial_columns().collect::<Vec<_>>() {
            self.upper[j] = 0.0;
            self.x[j] = 0.0;
            if !matches!(self.status[j], ColStatus::Basic(_)) {
                self.status[j] = ColStatus::AtLower;
            }
        }

        // Phase 2: the real objective.
        let cost = self.cost.clone();
        match self.optimize(&cost) {
            PivotResult::Optimal => LpOutcome::Optimal {
                values: self.x[..self.n_struct].to_vec(),
                objective: self.current_objective(),
            },
            PivotResult::Unbounded => LpOutcome::Unbounded,
            PivotResult::IterationLimit => LpOutcome::IterationLimit,
            PivotResult::TimedOut => LpOutcome::TimedOut,
            PivotResult::Numerical => LpOutcome::Numerical,
        }
    }

    /// Degenerate case: no constraints — every variable sits at its
    /// cost-optimal bound.
    fn solve_unconstrained(&mut self) -> LpOutcome {
        for j in 0..self.n_struct {
            let c = self.cost[j];
            let v = if c > 0.0 {
                self.lower[j]
            } else if c < 0.0 {
                self.upper[j]
            } else if self.lower[j].is_finite() {
                self.lower[j]
            } else if self.upper[j].is_finite() {
                self.upper[j]
            } else {
                0.0
            };
            if !v.is_finite() {
                return LpOutcome::Unbounded;
            }
            self.x[j] = v;
        }
        LpOutcome::Optimal {
            values: self.x[..self.n_struct].to_vec(),
            objective: self.current_objective(),
        }
    }

    /// The model-sense objective value of the current point.
    fn current_objective(&self) -> f64 {
        let min_obj: f64 = (0..self.n_struct).map(|j| self.cost[j] * self.x[j]).sum();
        self.obj_scale * min_obj + self.obj_offset
    }

    /// Total remaining bound violation absorbed by the artificials (zero at
    /// a feasible basis). Exposed for diagnostics.
    #[must_use]
    pub fn infeasibility(&self) -> f64 {
        self.artificial_columns().map(|j| self.x[j].max(0.0)).sum()
    }

    fn artificial_columns(&self) -> impl Iterator<Item = usize> {
        let start = self.n_struct + self.m;
        let end = self.n;
        start..end
    }

    /// Puts every non-artificial column at its bound nearest zero, then
    /// builds the starting basis: per row, the slack when it can absorb
    /// the residual (slack-preferring — most rows of a typical model start
    /// feasible this way), else — with [`crash`](Self::crash) on — a
    /// singleton structural column whose implied value fits its bounds
    /// (see [`crate::crash`]), else one sign-matched artificial.
    ///
    /// Returns `false` only when a crash basis failed to refactorize (the
    /// caller rebuilds without the crash); the crash-free basis is a ±1
    /// diagonal and always succeeds.
    #[must_use]
    fn initialize_artificial_basis(&mut self) -> bool {
        let m = self.m;
        for j in 0..self.n_struct + m {
            let (l, u) = (self.lower[j], self.upper[j]);
            let (v, st) = if l.is_finite() && u.is_finite() {
                if l.abs() <= u.abs() {
                    (l, ColStatus::AtLower)
                } else {
                    (u, ColStatus::AtUpper)
                }
            } else if l.is_finite() {
                (l, ColStatus::AtLower)
            } else if u.is_finite() {
                (u, ColStatus::AtUpper)
            } else {
                (0.0, ColStatus::FreeZero)
            };
            self.x[j] = v;
            self.status[j] = st;
        }
        // Residual r_i (with the slack parked at its bound-nearest-zero
        // value) decides the starting basis of each row: the slack itself
        // when the residual fits within the slack bounds — most rows of a
        // typical model start feasible this way and phase 1 only has to
        // repair the rest — otherwise one artificial of the sign-matching
        // pair.
        let mut residual = self.b.clone();
        for j in 0..self.n_struct + m {
            let v = self.x[j];
            if v != 0.0 {
                for &(i, a) in &self.cols[j] {
                    residual[i] -= a * v;
                }
            }
        }
        let crash_candidates = if self.crash {
            crate::crash::singleton_candidates(&self.cols, self.n_struct, m, self.min_pivot)
        } else {
            Vec::new()
        };
        self.crash_columns = 0;
        self.basis = Vec::with_capacity(m);
        let mut signs = vec![0.0; m];
        for i in 0..m {
            let s = self.n_struct + i;
            let p = self.n_struct + m + 2 * i;
            let q = p + 1;
            // The residual above subtracted the slack's parked value; the
            // row's remaining defect is what the basic variable must absorb.
            let defect = residual[i] + self.x[s];
            self.status[p] = ColStatus::AtLower;
            self.status[q] = ColStatus::AtLower;
            self.x[p] = 0.0;
            self.x[q] = 0.0;
            if defect >= self.lower[s] && defect <= self.upper[s] {
                // Slack basic (coefficient +1 ⇒ identity inverse row).
                self.status[s] = ColStatus::Basic(i);
                self.x[s] = defect;
                self.basis.push(s);
                signs[i] = 1.0;
                continue;
            }
            // Crash: a singleton structural column absorbs the residual
            // when its implied value fits inside its own bounds — the row
            // then starts feasible instead of feeding phase 1.
            let crash_col = crash_candidates
                .get(i)
                .into_iter()
                .flatten()
                .find_map(|&(j, a)| {
                    let v = residual[i] / a + self.x[j];
                    (v.is_finite() && v >= self.lower[j] && v <= self.upper[j]).then_some((j, v))
                });
            if let Some((j, v)) = crash_col {
                self.status[j] = ColStatus::Basic(i);
                self.x[j] = v;
                self.basis.push(j);
                // The diagonal entry is a_ij ≠ ±1: the basis is rebuilt by
                // a full refactorization below instead of the ±1 reset.
                self.crash_columns += 1;
                continue;
            }
            // Keep the slack parked; an artificial absorbs the rest.
            let rest = residual[i];
            let (chosen, binv_sign) = if rest >= 0.0 { (p, 1.0) } else { (q, -1.0) };
            self.status[chosen] = ColStatus::Basic(i);
            self.x[chosen] = rest.abs();
            self.basis.push(chosen);
            // Column of q is −e_i, so B⁻¹ row is −e_i when q is basic.
            signs[i] = binv_sign;
        }
        if self.crash_columns > 0 {
            self.basis_inv.reset(&vec![1.0; m]);
            if !self.refactorize() {
                return false;
            }
        } else {
            self.basis_inv.reset(&signs);
        }
        self.iterations = 0;
        true
    }

    /// Runs primal pivoting until optimal/unbounded for the given cost.
    fn optimize(&mut self, cost: &[f64]) -> PivotResult {
        let mut stall = 0u32;
        // Each phase starts a fresh pricing pass (partial-pricing cursor,
        // Devex reference weights).
        self.pricing.reset(self.n);
        loop {
            if self.iterations >= self.iteration_limit {
                return PivotResult::IterationLimit;
            }
            if fault::should_fire(FaultSite::SimplexNumerical) {
                return PivotResult::Numerical;
            }
            if self.iterations % 128 == 0 {
                if fault::should_fire(FaultSite::DeadlineExhausted) {
                    return PivotResult::TimedOut;
                }
                if let Some(deadline) = self.deadline {
                    if Instant::now() >= deadline {
                        return PivotResult::TimedOut;
                    }
                }
            }
            self.iterations += 1;

            // y = c_B' B⁻¹ (BTRAN of the basic costs, sparse by basis
            // position in ascending order).
            let m = self.m;
            let cb: Vec<(usize, f64)> = self
                .basis
                .iter()
                .enumerate()
                .filter(|&(_, &bj)| cost[bj] != 0.0)
                .map(|(i, &bj)| (i, cost[bj]))
                .collect();
            let mut y = vec![0.0; m];
            let t0 = Instant::now();
            self.basis_inv.btran(&cb, &mut y);
            self.time_solve += t0.elapsed();
            self.btran_calls += 1;

            // Pricing: `eval` owns eligibility and the reduced cost of one
            // column; the strategy owns which columns to examine. Bland's
            // rule (first improving column) bypasses the strategy — the
            // anti-cycling guarantee needs the index order.
            let t_pricing = Instant::now();
            let use_bland = stall > 64;
            let mut examined = 0u64;
            let entering = {
                let status = &self.status;
                let lower = &self.lower;
                let upper = &self.upper;
                let cols = &self.cols;
                let mut eval = |j: usize| -> Option<(f64, f64)> {
                    let dir_needed = match status[j] {
                        ColStatus::Basic(_) => return None,
                        ColStatus::AtLower => 1.0,
                        ColStatus::AtUpper => -1.0,
                        ColStatus::FreeZero => 0.0,
                    };
                    // Fixed columns (lower == upper) can never move:
                    // skipping them is essential — otherwise they enter
                    // with zero-length bound flips and the iteration spins.
                    if upper[j] - lower[j] <= 0.0 {
                        return None;
                    }
                    let mut d = cost[j];
                    for &(i, a) in &cols[j] {
                        d -= y[i] * a;
                    }
                    let (improves, dir) = if dir_needed == 0.0 {
                        // Free variable moves against the sign of d.
                        (d.abs() > EPS, if d > 0.0 { -1.0 } else { 1.0 })
                    } else if dir_needed > 0.0 {
                        (d < -EPS, 1.0)
                    } else {
                        (d > EPS, -1.0)
                    };
                    improves.then_some((d, dir))
                };
                if use_bland {
                    let mut first = None;
                    for j in 0..self.n {
                        examined += 1;
                        if let Some((d, dir)) = eval(j) {
                            first = Some((j, d, dir));
                            break;
                        }
                    }
                    first
                } else {
                    // The strategy is swapped out for the duration of the
                    // call so `eval` can borrow the solver's columns; the
                    // placeholder is a zero-sized box (no allocation).
                    let mut pricing =
                        std::mem::replace(&mut self.pricing, Box::new(DantzigPricing));
                    let pick = pricing.select(self.n, &mut examined, &mut eval);
                    self.pricing = pricing;
                    pick
                }
            };
            self.pricing_candidates += examined;
            self.time_pricing += t_pricing.elapsed();
            let Some((q, _dq, dir)) = entering else {
                return PivotResult::Optimal;
            };

            // FTRAN: w = B⁻¹ A_q.
            let mut w = vec![0.0; m];
            let t0 = Instant::now();
            self.basis_inv.ftran(&self.cols[q], &mut w);
            self.time_solve += t0.elapsed();
            self.ftran_calls += 1;

            // Two-pass (Harris-style) ratio test. Entering moves by t ≥ 0
            // in direction `dir`; basic i changes by −dir·t·w_i. Pass 1
            // finds the step limit with a slightly relaxed feasibility
            // tolerance; pass 2 picks, among blockers within that limit,
            // the one with the **largest pivot magnitude** — tiny pivots
            // blow up the maintained inverse and must be avoided.
            const FEAS_RELAX: f64 = 1e-9;
            let flip_range = self.upper[q] - self.lower[q]; // may be +inf
            let mut t_limit = flip_range;
            for (i, &wi) in w.iter().enumerate() {
                let delta = -dir * wi;
                if delta.abs() <= self.min_pivot {
                    continue;
                }
                let bj = self.basis[i];
                let xi = self.x[bj];
                let limit = if delta > 0.0 {
                    self.upper[bj]
                } else {
                    self.lower[bj]
                };
                if !limit.is_finite() {
                    continue;
                }
                let t = ((limit - xi) / delta + FEAS_RELAX / delta.abs()).max(0.0);
                if t < t_limit {
                    t_limit = t;
                }
            }
            if !t_limit.is_finite() {
                return PivotResult::Unbounded;
            }
            // Pass 2: strongest pivot within the limit (under Bland's rule:
            // smallest basis column index, for the anti-cycling guarantee).
            let mut chosen: Option<(usize, bool, f64, f64)> = None; // (row, hits_upper, t, |pivot|)
            for (i, &wi) in w.iter().enumerate() {
                let delta = -dir * wi;
                if delta.abs() <= self.min_pivot {
                    continue;
                }
                let bj = self.basis[i];
                let xi = self.x[bj];
                let (limit, hits_upper) = if delta > 0.0 {
                    (self.upper[bj], true)
                } else {
                    (self.lower[bj], false)
                };
                if !limit.is_finite() {
                    continue;
                }
                let t = ((limit - xi) / delta).max(0.0);
                if t <= t_limit + 1e-12 {
                    let take = match &chosen {
                        None => true,
                        Some((r, _, _, best_mag)) => {
                            if use_bland {
                                bj < self.basis[*r]
                            } else {
                                delta.abs() > *best_mag
                            }
                        }
                    };
                    if take {
                        chosen = Some((i, hits_upper, t, delta.abs()));
                    }
                }
            }
            let (t_best, leaving) = match chosen {
                Some((r, hits_upper, t, _)) => (t, Some((r, hits_upper))),
                None => (flip_range, None),
            };
            if !t_best.is_finite() {
                return PivotResult::Unbounded;
            }

            // Apply the step.
            let t = t_best;
            for (i, &wi) in w.iter().enumerate() {
                let bj = self.basis[i];
                self.x[bj] += -dir * wi * t;
            }
            self.x[q] += dir * t;

            match leaving {
                None => {
                    // Bound flip: entering jumped to its opposite bound.
                    self.bound_flips += 1;
                    self.status[q] = match self.status[q] {
                        ColStatus::AtLower => ColStatus::AtUpper,
                        ColStatus::AtUpper => ColStatus::AtLower,
                        other => other,
                    };
                }
                Some((r, hits_upper)) => {
                    let leaving_col = self.basis[r];
                    // Snap the leaving variable exactly onto its bound.
                    self.x[leaving_col] = if hits_upper {
                        self.upper[leaving_col]
                    } else {
                        self.lower[leaving_col]
                    };
                    self.status[leaving_col] = if hits_upper {
                        ColStatus::AtUpper
                    } else {
                        ColStatus::AtLower
                    };
                    self.status[q] = ColStatus::Basic(r);
                    self.basis[r] = q;
                    // Devex needs the *pre-pivot* row e_r' B⁻¹ to update
                    // its reference weights, so price it before the basis
                    // representation absorbs the pivot.
                    if self.pricing.wants_pivot_row() {
                        let mut rho = vec![0.0; m];
                        let t0 = Instant::now();
                        self.basis_inv.btran(&[(r, 1.0)], &mut rho);
                        self.time_solve += t0.elapsed();
                        self.btran_calls += 1;
                        let status = &self.status;
                        let cols = &self.cols;
                        let mut alpha = |j: usize| -> Option<f64> {
                            if matches!(status[j], ColStatus::Basic(_)) {
                                return None;
                            }
                            let mut a = 0.0;
                            for &(i, c) in &cols[j] {
                                a += rho[i] * c;
                            }
                            Some(a)
                        };
                        let mut pricing =
                            std::mem::replace(&mut self.pricing, Box::new(DantzigPricing));
                        pricing.update(q, leaving_col, w[r], &mut alpha);
                        self.pricing = pricing;
                    }
                    let t0 = Instant::now();
                    self.basis_inv.pivot(r, &w);
                    self.time_solve += t0.elapsed();
                    if self.basis_inv.wants_refactor(self.refactor_interval) && !self.refactorize()
                    {
                        return PivotResult::Numerical;
                    }
                }
            }

            // Stall detection for Bland switching: a step of positive
            // length strictly improves the objective.
            if t > 1e-10 {
                stall = 0;
            } else {
                stall += 1;
            }
        }
    }

    /// Rebuilds the basis representation from the current basis columns
    /// (numerical-drift control after many product-form updates).
    ///
    /// A `false` return means the basis matrix came out numerically
    /// singular — a true basis never is, so the maintained inverse has
    /// drifted beyond repair and the caller must abort the solve
    /// ([`LpOutcome::Numerical`]) instead of pivoting on a stale
    /// inverse.
    #[must_use]
    fn refactorize(&mut self) -> bool {
        if fault::should_fire(FaultSite::SingularRefactor) {
            return false;
        }
        let t0 = Instant::now();
        let cols: Vec<&crate::basis::SparseCol> =
            self.basis.iter().map(|&j| &self.cols[j]).collect();
        let ok = self.basis_inv.refactorize(&cols);
        self.time_factorize += t0.elapsed();
        ok
    }

    /// Captures the current basis partition for warm-starting a child
    /// node's re-solve. Meaningful after a solve that returned
    /// [`LpOutcome::Optimal`]; the snapshot is independent of the basis
    /// inverse, so it is cheap to clone and share across threads.
    #[must_use]
    pub fn snapshot(&self) -> WarmBasis {
        WarmBasis {
            basis: self.basis.clone(),
            status: self.status.clone(),
            n_struct: self.n_struct,
            iterations: self.iterations,
            phase1_iterations: self.phase1_iterations,
        }
    }

    /// Attempts a warm (dual-simplex) re-solve from a parent basis
    /// snapshot, with `cutoff` the minimization-form objective threshold at
    /// or above which the node is fathomed (`f64::INFINITY` disables
    /// fathoming and leaves only infeasibility detection).
    ///
    /// The solver must be freshly built from the *child* model (the
    /// parent's model with one bound tightened). The parent's optimal
    /// basis stays exactly dual feasible for the child — the branching
    /// variable is basic in the parent, so every nonbasic status still
    /// points at an unchanged bound — which is verified numerically after
    /// the basis inverse is rebuilt; any discrepancy degrades to
    /// [`WarmOutcome::GiveUp`] and the caller re-solves cold.
    pub fn warm_resolve(&mut self, warm: &WarmBasis, cutoff: f64) -> WarmOutcome {
        let m = self.m;
        if m == 0
            || warm.basis.len() != m
            || warm.status.len() != self.n
            || warm.n_struct != self.n_struct
        {
            return WarmOutcome::GiveUp { iterations: 0 };
        }
        // Close the artificials exactly like the cold path does after
        // phase 1: they are spectators of the re-solve.
        for j in self.artificial_columns().collect::<Vec<_>>() {
            self.upper[j] = 0.0;
        }
        self.basis.clone_from(&warm.basis);
        self.status.clone_from(&warm.status);
        for (i, &bj) in self.basis.iter().enumerate() {
            if self.status[bj] != ColStatus::Basic(i) {
                return WarmOutcome::GiveUp { iterations: 0 };
            }
        }
        // Nonbasic columns rest on their (child-model) bounds.
        for j in 0..self.n {
            self.x[j] = match self.status[j] {
                ColStatus::Basic(_) => continue,
                ColStatus::AtLower => self.lower[j],
                ColStatus::AtUpper => self.upper[j],
                ColStatus::FreeZero => 0.0,
            };
            if !self.x[j].is_finite() {
                return WarmOutcome::GiveUp { iterations: 0 };
            }
        }
        // Rebuild B⁻¹ from scratch for the inherited basis.
        self.basis_inv.reset(&vec![1.0; m]);
        if !self.refactorize() {
            return WarmOutcome::GiveUp { iterations: 0 };
        }
        // x_B = B⁻¹ (b − N x_N).
        let mut resid = self.b.clone();
        for j in 0..self.n {
            if matches!(self.status[j], ColStatus::Basic(_)) {
                continue;
            }
            let v = self.x[j];
            if v != 0.0 {
                for &(i, a) in &self.cols[j] {
                    resid[i] -= a * v;
                }
            }
        }
        let resid: Vec<(usize, f64)> = resid
            .iter()
            .enumerate()
            .filter(|&(_, &v)| v != 0.0)
            .map(|(i, &v)| (i, v))
            .collect();
        let mut xb = vec![0.0; m];
        let t0 = Instant::now();
        self.basis_inv.ftran(&resid, &mut xb);
        self.time_solve += t0.elapsed();
        self.ftran_calls += 1;
        for (i, &bj) in self.basis.iter().enumerate() {
            if !xb[i].is_finite() {
                return WarmOutcome::GiveUp { iterations: 0 };
            }
            self.x[bj] = xb[i];
        }
        // Verify dual feasibility of the inherited basis (exact in theory,
        // checked numerically because the inverse was just rebuilt).
        let cost = self.cost.clone();
        let y = self.btran_costs(&cost);
        for j in 0..self.n {
            if matches!(self.status[j], ColStatus::Basic(_)) {
                continue;
            }
            if self.upper[j] - self.lower[j] <= 0.0 {
                continue; // fixed columns never move: sign-free
            }
            let mut d = cost[j];
            for &(i, a) in &self.cols[j] {
                d -= y[i] * a;
            }
            let tol = 1e-6 * (1.0 + cost[j].abs());
            let dual_feasible = match self.status[j] {
                ColStatus::AtLower => d >= -tol,
                ColStatus::AtUpper => d <= tol,
                ColStatus::FreeZero => d.abs() <= tol,
                ColStatus::Basic(_) => true,
            };
            if !dual_feasible {
                return WarmOutcome::GiveUp { iterations: 0 };
            }
        }
        self.dual_optimize(&cost, cutoff)
    }

    /// Attempts a **primal** warm start from another scenario's root-basis
    /// snapshot, skipping phase 1 entirely: the donor basis is installed,
    /// the basic values are recomputed against *this* model's data, and —
    /// if they land inside their bounds — phase 2 runs directly from that
    /// point. `None` means the basis could not be installed feasibly
    /// (shape mismatch, singular refactorization, or primal infeasibility
    /// on this model's data) and the caller must solve cold; the attempt
    /// leaves no observable state beyond the work counters, so the cold
    /// fallback is exactly a from-scratch [`solve`](Self::solve).
    ///
    /// This is the cross-scenario rung of the warm ladder (see DESIGN.md
    /// §"Warm-start architecture"): where [`warm_resolve`]
    /// (dual, value-free) serves branch-and-bound children under a known
    /// cutoff, `solve_from_basis` serves *sibling scenarios* at the root,
    /// where no cutoff exists and full primal values are required. On a
    /// resubmission of the same structure the donor's optimal basis is
    /// primal feasible by construction and phase 2 terminates in a
    /// handful of iterations; on an α-sibling (same shape, scaled data)
    /// the install is opportunistic.
    ///
    /// [`warm_resolve`]: Self::warm_resolve
    pub fn solve_from_basis(&mut self, warm: &WarmBasis) -> Option<LpOutcome> {
        let m = self.m;
        if m == 0
            || warm.basis.len() != m
            || warm.status.len() != self.n
            || warm.n_struct != self.n_struct
        {
            return None;
        }
        // Close the artificials exactly like the cold path does after
        // phase 1: the donor basis never contains an open artificial.
        for j in self.artificial_columns().collect::<Vec<_>>() {
            self.upper[j] = 0.0;
        }
        self.basis.clone_from(&warm.basis);
        self.status.clone_from(&warm.status);
        for (i, &bj) in self.basis.iter().enumerate() {
            if self.status[bj] != ColStatus::Basic(i) {
                return None;
            }
        }
        // Nonbasic columns rest on *this* model's bounds.
        for j in 0..self.n {
            self.x[j] = match self.status[j] {
                ColStatus::Basic(_) => continue,
                ColStatus::AtLower => self.lower[j],
                ColStatus::AtUpper => self.upper[j],
                ColStatus::FreeZero => 0.0,
            };
            if !self.x[j].is_finite() {
                return None;
            }
        }
        // Rebuild B⁻¹ from scratch for the imported basis.
        self.basis_inv.reset(&vec![1.0; m]);
        if !self.refactorize() {
            return None;
        }
        // x_B = B⁻¹ (b − N x_N).
        let mut resid = self.b.clone();
        for j in 0..self.n {
            if matches!(self.status[j], ColStatus::Basic(_)) {
                continue;
            }
            let v = self.x[j];
            if v != 0.0 {
                for &(i, a) in &self.cols[j] {
                    resid[i] -= a * v;
                }
            }
        }
        let resid: Vec<(usize, f64)> = resid
            .iter()
            .enumerate()
            .filter(|&(_, &v)| v != 0.0)
            .map(|(i, &v)| (i, v))
            .collect();
        let mut xb = vec![0.0; m];
        let t0 = Instant::now();
        self.basis_inv.ftran(&resid, &mut xb);
        self.time_solve += t0.elapsed();
        self.ftran_calls += 1;
        for (i, &bj) in self.basis.iter().enumerate() {
            if !xb[i].is_finite() {
                return None;
            }
            self.x[bj] = xb[i];
        }
        // Primal feasibility of the imported basis on this model's data.
        // EPS-scale violations are tolerated: the primal ratio test clamps
        // negative ratios to zero, so a basic value resting a hair outside
        // its bound is repaired by a degenerate pivot, exactly as after a
        // cold phase 1.
        for &bj in &self.basis {
            let v = self.x[bj];
            let tol = EPS * (1.0 + v.abs());
            if v < self.lower[bj] - tol || v > self.upper[bj] + tol {
                return None;
            }
        }
        // Phase 2 straight away: phase 1 was never entered.
        self.iterations = 0;
        self.phase1_iterations = 0;
        let cost = self.cost.clone();
        Some(match self.optimize(&cost) {
            PivotResult::Optimal => LpOutcome::Optimal {
                values: self.x[..self.n_struct].to_vec(),
                objective: self.current_objective(),
            },
            PivotResult::Unbounded => LpOutcome::Unbounded,
            PivotResult::IterationLimit => LpOutcome::IterationLimit,
            PivotResult::TimedOut => LpOutcome::TimedOut,
            PivotResult::Numerical => LpOutcome::Numerical,
        })
    }

    /// Structural values and basis columns of the current point (debug
    /// instrumentation for warm-vs-cold comparisons; not a public API).
    #[doc(hidden)]
    #[must_use]
    pub fn debug_point(&self) -> (Vec<f64>, Vec<usize>) {
        (self.x[..self.n_struct].to_vec(), self.basis.clone())
    }

    /// `y = c_B' B⁻¹` (BTRAN of the basic costs, sparse by basis position
    /// in ascending order).
    fn btran_costs(&mut self, cost: &[f64]) -> Vec<f64> {
        let cb: Vec<(usize, f64)> = self
            .basis
            .iter()
            .enumerate()
            .filter(|&(_, &bj)| cost[bj] != 0.0)
            .map(|(i, &bj)| (i, cost[bj]))
            .collect();
        let mut y = vec![0.0; self.m];
        let t0 = Instant::now();
        self.basis_inv.btran(&cb, &mut y);
        self.time_solve += t0.elapsed();
        self.btran_calls += 1;
        y
    }

    /// The bounded-variable dual simplex loop behind
    /// [`warm_resolve`](Self::warm_resolve).
    ///
    /// Invariant: the basis is dual feasible, so the primal objective of
    /// the current point (nonbasics on bounds, basics solving the rows) is
    /// a valid, monotonically non-decreasing lower bound on the LP optimum
    /// — crossing `cutoff` therefore fathoms the node without ever
    /// producing primal values. Primal infeasibility is declared only with
    /// a Farkas-style margin wide enough that the cold phase-1 tolerance
    /// (`1e-6`) is guaranteed to agree.
    fn dual_optimize(&mut self, cost: &[f64], cutoff: f64) -> WarmOutcome {
        /// Safety margin (versus the row-scaled cold phase-1 tolerance of
        /// `1e-6`) required before the warm path declares infeasibility.
        const INFEAS_MARGIN: f64 = 1e-5;
        /// Iteration budget when the starting bound sits hopelessly far
        /// below the cutoff (or no finite cutoff exists): a fathom would
        /// need the dual bound to climb the whole gap, which essentially
        /// never happens on a weak (big-M) relaxation, so the only
        /// certificate still worth chasing is primal infeasibility — and
        /// the ratio test exposes that within a few pivots of the changed
        /// bound or not at all. Keeping hopeless attempts this short bounds
        /// the warm overhead of a fallback to a sliver of a cold re-solve.
        const HOPELESS_GAP_BUDGET: u64 = 48;
        let m = self.m;
        // Solver-facing cutoff is scale·model_obj; internally the loop
        // tracks min_inner = Σ cost·x with min_obj = min_inner + scale·offset.
        let cutoff_inner = cutoff - self.obj_scale * self.obj_offset;
        let fathom_margin = 1e-6 * (1.0 + cutoff_inner.abs());
        let costed: Vec<usize> = (0..self.n).filter(|&j| cost[j] != 0.0).collect();
        // Gap-adaptive budget, decided once from deterministic state (the
        // inherited basis and the node's creation-time cutoff), so warm
        // runs stay bit-reproducible at any thread count. The gap is
        // measured relative to the magnitudes actually involved (with a
        // floor for near-zero objectives) — an absolute `1 + |cutoff|`
        // scale would drown fractional objectives like OBJ-DEL's delay
        // ratios and declare every gap plausible.
        let initial: f64 = costed.iter().map(|&j| cost[j] * self.x[j]).sum();
        let gap_scale = cutoff_inner.abs().max(initial.abs()).max(1e-3);
        let hopeless = !cutoff_inner.is_finite() || cutoff_inner - initial > 0.25 * gap_scale;
        let budget = if hopeless {
            self.dual_iteration_limit.min(HOPELESS_GAP_BUDGET)
        } else {
            self.dual_iteration_limit
        };
        let mut iterations: u64 = 0;
        let mut stall = 0u32;
        let mut last_obj = f64::NEG_INFINITY;
        loop {
            if iterations >= budget {
                return WarmOutcome::GiveUp { iterations };
            }
            if iterations % 64 == 0 {
                if fault::should_fire(FaultSite::DeadlineExhausted) {
                    return WarmOutcome::GiveUp { iterations };
                }
                if let Some(deadline) = self.deadline {
                    if Instant::now() >= deadline {
                        return WarmOutcome::GiveUp { iterations };
                    }
                }
            }
            // The dual bound of the current basis.
            let obj: f64 = costed.iter().map(|&j| cost[j] * self.x[j]).sum();
            if obj >= cutoff_inner + fathom_margin {
                return WarmOutcome::Fathomed { iterations };
            }
            // Degenerate pivots don't move the bound; give up rather than
            // risk cycling (the cold path is always available).
            if obj <= last_obj + 1e-12 {
                stall += 1;
                if stall > 256 {
                    return WarmOutcome::GiveUp { iterations };
                }
            } else {
                stall = 0;
            }
            last_obj = obj;

            // Leaving row: largest primal bound violation.
            let mut leave: Option<(usize, f64)> = None; // (row, signed violation)
            for (i, &bj) in self.basis.iter().enumerate() {
                let xi = self.x[bj];
                let viol = if xi > self.upper[bj] + EPS {
                    xi - self.upper[bj]
                } else if xi < self.lower[bj] - EPS {
                    xi - self.lower[bj]
                } else {
                    continue;
                };
                match leave {
                    Some((_, best)) if viol.abs() <= best.abs() => {}
                    _ => leave = Some((i, viol)),
                }
            }
            let Some((r, viol)) = leave else {
                // Primal feasible: the optimum lies below the cutoff, and
                // canonical values must come from the cold path.
                return WarmOutcome::GiveUp { iterations };
            };
            iterations += 1;
            self.dual_iterations += 1;
            let sigma = if viol > 0.0 { 1.0 } else { -1.0 };

            // ρ = row r of B⁻¹ (BTRAN of e_r); the Farkas certificate scale.
            let mut rho = vec![0.0; m];
            let t0 = Instant::now();
            self.basis_inv.btran(&[(r, 1.0)], &mut rho);
            self.time_solve += t0.elapsed();
            self.btran_calls += 1;
            let rho_inf = rho.iter().fold(0.0f64, |a, &v| a.max(v.abs()));
            let y = self.btran_costs(cost);

            // Price the pivot row: a nonbasic column is an eligible blocker
            // exactly when moving it within its bounds reduces the
            // violation (equivalently, when the dual step drives its
            // reduced cost towards zero).
            let t_pricing = Instant::now();
            let mut blockers: Vec<Blocker> = Vec::new();
            for j in 0..self.n {
                if matches!(self.status[j], ColStatus::Basic(_)) {
                    continue;
                }
                let range = self.upper[j] - self.lower[j];
                if range <= 0.0 {
                    continue; // fixed columns can never move
                }
                let mut alpha = 0.0;
                for &(i, a) in &self.cols[j] {
                    alpha += rho[i] * a;
                }
                let sa = sigma * alpha;
                let eligible = match self.status[j] {
                    ColStatus::AtLower => sa > 1e-9,
                    ColStatus::AtUpper => sa < -1e-9,
                    ColStatus::FreeZero => sa.abs() > 1e-9,
                    ColStatus::Basic(_) => false,
                };
                if !eligible {
                    continue;
                }
                let mut d = cost[j];
                for &(i, a) in &self.cols[j] {
                    d -= y[i] * a;
                }
                blockers.push(Blocker {
                    j,
                    t: (d / sa).max(0.0),
                    alpha,
                    range,
                });
            }
            self.pricing_candidates += self.n as u64;
            self.time_pricing += t_pricing.elapsed();
            if blockers.is_empty() {
                // Dual unbounded: no nonbasic movement can repair the row,
                // so every point of the box violates it by |viol| — the
                // Farkas margin, in units bounded by ‖ρ‖∞.
                if viol.abs() > INFEAS_MARGIN * rho_inf.max(1.0) {
                    return WarmOutcome::Infeasible { iterations };
                }
                return WarmOutcome::GiveUp { iterations };
            }

            // Bound-flipping dual ratio test, Harris-style two passes.
            // Pass 1 walks blockers in ratio order, flipping boxed columns
            // to their opposite bound while the infeasibility slope stays
            // positive; the blocker that would overshoot enters the basis.
            blockers.sort_by(|a, b| {
                a.t.partial_cmp(&b.t)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(
                        b.alpha
                            .abs()
                            .partial_cmp(&a.alpha.abs())
                            .unwrap_or(std::cmp::Ordering::Equal),
                    )
            });
            let mut slope = viol.abs();
            let mut flip_count = 0usize;
            let mut enter_idx: Option<usize> = None;
            for (k, blocker) in blockers.iter().enumerate() {
                let reduction = blocker.alpha.abs() * blocker.range;
                if reduction.is_finite() && slope - reduction > 1e-9 {
                    flip_count = k + 1;
                    slope -= reduction;
                } else {
                    enter_idx = Some(k);
                    break;
                }
            }
            let Some(mut enter_k) = enter_idx else {
                // Every eligible blocker flips and the violation survives:
                // the box cannot satisfy the row. Same margin rule.
                if slope > INFEAS_MARGIN * rho_inf.max(1.0) {
                    return WarmOutcome::Infeasible { iterations };
                }
                return WarmOutcome::GiveUp { iterations };
            };
            // Pass 2: among blockers within a whisker of the frontier
            // ratio, prefer the largest pivot magnitude (tiny pivots blow
            // up the maintained inverse).
            let frontier = blockers[enter_k].t;
            for k in enter_k + 1..blockers.len() {
                if blockers[k].t > frontier + 1e-9 {
                    break;
                }
                if blockers[k].alpha.abs() > blockers[enter_k].alpha.abs() {
                    enter_k = k;
                }
            }

            // Apply the bound flips, then repair the basic values with a
            // single FTRAN of the accumulated column movement.
            if flip_count > 0 {
                let mut db = vec![0.0; m];
                for blocker in &blockers[..flip_count] {
                    let j = blocker.j;
                    let (st, v) = match self.status[j] {
                        ColStatus::AtLower => (ColStatus::AtUpper, self.upper[j]),
                        ColStatus::AtUpper => (ColStatus::AtLower, self.lower[j]),
                        // Unreachable: flipped blockers have finite range.
                        other => (other, self.x[j]),
                    };
                    let dv = v - self.x[j];
                    if dv != 0.0 {
                        for &(i, a) in &self.cols[j] {
                            db[i] += a * dv;
                        }
                    }
                    self.x[j] = v;
                    self.status[j] = st;
                    self.bound_flips += 1;
                }
                let db: Vec<(usize, f64)> = db
                    .iter()
                    .enumerate()
                    .filter(|&(_, &v)| v != 0.0)
                    .map(|(i, &v)| (i, v))
                    .collect();
                let mut w = vec![0.0; m];
                let t0 = Instant::now();
                self.basis_inv.ftran(&db, &mut w);
                self.time_solve += t0.elapsed();
                self.ftran_calls += 1;
                for (i, &bj) in self.basis.iter().enumerate() {
                    self.x[bj] -= w[i];
                }
            }

            // Entering pivot: drive the leaving variable exactly onto its
            // violated bound.
            let q = blockers[enter_k].j;
            let mut w = vec![0.0; m];
            let t0 = Instant::now();
            self.basis_inv.ftran(&self.cols[q], &mut w);
            self.time_solve += t0.elapsed();
            self.ftran_calls += 1;
            let alpha = w[r];
            if alpha.abs() <= self.min_pivot {
                return WarmOutcome::GiveUp { iterations };
            }
            let leaving = self.basis[r];
            let target = if sigma > 0.0 {
                self.upper[leaving]
            } else {
                self.lower[leaving]
            };
            let dxq = (self.x[leaving] - target) / alpha;
            for (i, &bj) in self.basis.iter().enumerate() {
                self.x[bj] -= w[i] * dxq;
            }
            self.x[leaving] = target;
            self.status[leaving] = if sigma > 0.0 {
                ColStatus::AtUpper
            } else {
                ColStatus::AtLower
            };
            self.x[q] += dxq;
            self.status[q] = ColStatus::Basic(r);
            self.basis[r] = q;
            let t0 = Instant::now();
            self.basis_inv.pivot(r, &w);
            self.time_solve += t0.elapsed();
            if self.basis_inv.wants_refactor(self.refactor_interval) && !self.refactorize() {
                return WarmOutcome::GiveUp { iterations };
            }
        }
    }
}

/// One eligible column of the dual ratio test.
struct Blocker {
    /// Column index.
    j: usize,
    /// Dual ratio `d_j / (σ·α_j)` at which this column's reduced cost
    /// reaches zero (clamped to `≥ 0`).
    t: f64,
    /// Pivot-row coefficient `(B⁻¹ A_j)_r`.
    alpha: f64,
    /// Bound range `u_j − l_j` (`+∞` when unboxed: such a column can only
    /// enter, never flip).
    range: f64,
}

/// A basis snapshot of an optimal LP solve, captured by
/// [`SimplexSolver::snapshot`] and consumed by
/// [`SimplexSolver::warm_resolve`] on a child node. Opaque: the basis
/// partition only has meaning for models with the same shape (row count,
/// variable count) as the snapshotted one.
#[derive(Debug, Clone)]
pub struct WarmBasis {
    basis: Vec<usize>,
    status: Vec<ColStatus>,
    n_struct: usize,
    iterations: u64,
    phase1_iterations: u64,
}

impl WarmBasis {
    /// Simplex iterations the snapshotted (parent) solve spent — the
    /// deterministic proxy for how much work a warm fathom of a child
    /// saves.
    #[must_use]
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Phase-1 iterations the snapshotted solve spent — the deterministic
    /// proxy for what a successful cross-scenario root import of this
    /// basis saves (the import skips phase 1 entirely; see
    /// [`SimplexSolver::solve_from_basis`]).
    #[must_use]
    pub fn phase1_iterations(&self) -> u64 {
        self.phase1_iterations
    }
}

/// Outcome of a warm (dual-simplex) node re-solve — see
/// [`SimplexSolver::warm_resolve`]. The warm path never produces primal
/// values: it either certifies a value-free outcome or hands the node back
/// to the cold primal path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarmOutcome {
    /// The monotone dual objective bound crossed the cutoff: the node
    /// cannot beat the incumbent that stamped the cutoff.
    Fathomed {
        /// Dual iterations spent.
        iterations: u64,
    },
    /// The node LP is infeasible, certified with a safety margin over the
    /// cold path's phase-1 tolerance so both paths always agree.
    Infeasible {
        /// Dual iterations spent.
        iterations: u64,
    },
    /// Nothing could be certified (dual infeasibility after install, an
    /// optimum below the cutoff, the iteration cap, a degeneracy stall, or
    /// numerical trouble): the caller must re-solve cold.
    GiveUp {
        /// Dual iterations spent.
        iterations: u64,
    },
}

/// Result of one `optimize` run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PivotResult {
    Optimal,
    Unbounded,
    IterationLimit,
    TimedOut,
    /// A from-scratch refactorization failed (see [`LpOutcome::Numerical`]).
    Numerical,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, ObjectiveSense};
    use crate::LinExpr;

    fn solve(model: &Model) -> LpOutcome {
        SimplexSolver::from_model(model).solve()
    }

    fn assert_optimal(outcome: &LpOutcome, expected_obj: f64) -> Vec<f64> {
        match outcome {
            LpOutcome::Optimal { values, objective } => {
                assert!(
                    (objective - expected_obj).abs() < 1e-6,
                    "objective {objective} != {expected_obj}"
                );
                values.clone()
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn trivial_bounds_only() {
        let mut m = Model::new();
        let x = m.add_continuous("x", 1.0, 4.0);
        m.set_objective(ObjectiveSense::Minimize, 3.0 * x);
        let v = assert_optimal(&solve(&m), 3.0);
        assert!((v[0] - 1.0).abs() < 1e-7);
    }

    #[test]
    fn classic_two_var_lp() {
        // max 3x + 2y s.t. x + y ≤ 4, x + 3y ≤ 6, x,y ≥ 0 → x=4, y=0, obj 12.
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.add_constraint("c1", (x + y).le(4.0));
        m.add_constraint("c2", (x + 3.0 * y).le(6.0));
        m.set_objective(ObjectiveSense::Maximize, 3.0 * x + 2.0 * y);
        let v = assert_optimal(&solve(&m), 12.0);
        assert!((v[0] - 4.0).abs() < 1e-6);
        assert!(v[1].abs() < 1e-6);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + 2y = 3, x - y = 0 → x = y = 1, obj 2.
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.add_constraint("e1", (x + 2.0 * y).eq(3.0));
        m.add_constraint("e2", (x - y).eq(0.0));
        m.set_objective(ObjectiveSense::Minimize, x + y);
        let v = assert_optimal(&solve(&m), 2.0);
        assert!((v[0] - 1.0).abs() < 1e-6 && (v[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn ge_constraints_and_negative_bounds() {
        // min x s.t. x ≥ -5, x + y ≥ 2, y ≤ 1, y ≥ 0 → x = 1.
        let mut m = Model::new();
        let x = m.add_continuous("x", -5.0, f64::INFINITY);
        let y = m.add_continuous("y", 0.0, 1.0);
        m.add_constraint("c", (x + y).ge(2.0));
        m.set_objective(ObjectiveSense::Minimize, LinExpr::from(x));
        let v = assert_optimal(&solve(&m), 1.0);
        assert!((v[0] - 1.0).abs() < 1e-6);
        assert!((v[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_detected() {
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, 1.0);
        m.add_constraint("c", LinExpr::from(x).ge(2.0));
        assert_eq!(solve(&m), LpOutcome::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.add_constraint("c", (x - y).le(1.0));
        m.set_objective(ObjectiveSense::Maximize, LinExpr::from(x));
        assert_eq!(solve(&m), LpOutcome::Unbounded);
    }

    #[test]
    fn free_variable() {
        // min |style|: free variable pushed by constraints. min y s.t.
        // y ≥ x − 2, y ≥ −x, x free → optimum at x = 1, y = −1.
        let mut m = Model::new();
        let x = m.add_continuous("x", f64::NEG_INFINITY, f64::INFINITY);
        let y = m.add_continuous("y", f64::NEG_INFINITY, f64::INFINITY);
        m.add_constraint("a", (LinExpr::from(y) - x).ge(-2.0));
        m.add_constraint("b", (y + x).ge(0.0));
        m.set_objective(ObjectiveSense::Minimize, LinExpr::from(y));
        let v = assert_optimal(&solve(&m), -1.0);
        assert!((v[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Classic degenerate LP (multiple constraints active at a vertex).
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.add_constraint("c1", (x + y).le(1.0));
        m.add_constraint("c2", (x + y).le(1.0));
        m.add_constraint("c3", (2.0 * x + 2.0 * y).le(2.0));
        m.set_objective(ObjectiveSense::Maximize, x + y);
        assert_optimal(&solve(&m), 1.0);
    }

    #[test]
    fn fixed_variables_respected() {
        let mut m = Model::new();
        let x = m.add_continuous("x", 2.0, 2.0);
        let y = m.add_continuous("y", 0.0, 10.0);
        m.add_constraint("c", (x + y).eq(5.0));
        m.set_objective(ObjectiveSense::Minimize, LinExpr::from(y));
        let v = assert_optimal(&solve(&m), 3.0);
        assert!((v[0] - 2.0).abs() < 1e-7);
    }

    #[test]
    fn zero_constraint_model() {
        let mut m = Model::new();
        let x = m.add_continuous("x", -1.0, 3.0);
        m.set_objective(ObjectiveSense::Maximize, 2.0 * x);
        let v = assert_optimal(&solve(&m), 6.0);
        assert!((v[0] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn maximization_offset() {
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, 5.0);
        m.add_constraint("c", (2.0 * x).le(6.0));
        m.set_objective(ObjectiveSense::Maximize, x + 10.0);
        assert_optimal(&solve(&m), 13.0);
    }

    #[test]
    fn bound_flip_path() {
        // Forces a pure bound flip: maximize x + y with a joint cap.
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, 1.0);
        let y = m.add_continuous("y", 0.0, 1.0);
        m.add_constraint("c", (x + y).le(10.0)); // never binding
        m.set_objective(ObjectiveSense::Maximize, x + y);
        let v = assert_optimal(&solve(&m), 2.0);
        assert!((v[0] - 1.0).abs() < 1e-9 && (v[1] - 1.0).abs() < 1e-9);
    }

    /// The 3×3 LP of the hand-computed dual ratio test below:
    ///
    /// ```text
    ///     min  x + 2y + 3z
    ///     s.t. x + y + z ≥ 4        (r1)
    ///          y + z     ≤ 5        (r2)
    ///          z         ≤ 3        (r3)
    ///          x, y, z ∈ [0, 10]
    /// ```
    ///
    /// Cold optimum: x = 4, y = z = 0, objective 4, with basis
    /// {x @ r1, s2 @ r2, s3 @ r3} (all row scales are 1, so `B = I`).
    fn dual_test_lp() -> (Model, [crate::Var; 3]) {
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, 10.0);
        let y = m.add_continuous("y", 0.0, 10.0);
        let z = m.add_continuous("z", 0.0, 10.0);
        m.add_constraint("r1", (x + y + z).ge(4.0));
        m.add_constraint("r2", (y + z).le(5.0));
        m.add_constraint("r3", LinExpr::from(z).le(3.0));
        m.set_objective(ObjectiveSense::Minimize, x + 2.0 * y + 3.0 * z);
        (m, [x, y, z])
    }

    /// Solves the parent of [`dual_test_lp`] and returns its snapshot.
    fn dual_test_parent() -> (Model, [crate::Var; 3], WarmBasis) {
        let (m, vars) = dual_test_lp();
        let mut parent = SimplexSolver::from_model(&m);
        assert_optimal(&parent.solve(), 4.0);
        (m, vars, parent.snapshot())
    }

    /// Hand-computed dual ratio test. Branching `x ≤ 2` leaves the basic
    /// `x = 4` above its new upper bound (violation 2, σ = +1, pivot row
    /// ρ = e₁). Candidate blockers on that row: `y` with reduced cost
    /// d = 2 − 1 = 1 and ratio t = 1, `z` with d = 3 − 1 = 2 and ratio
    /// t = 2; the `≥` slack is at its upper bound with σα > 0, ineligible.
    /// The ratio test must pick `y` (smaller ratio), whose range 10 covers
    /// the violation, so `y` enters with step (4 − 2)/1 = 2: one dual
    /// iteration to the child optimum x = 2, y = 2, z = 0, objective 6.
    #[test]
    fn dual_ratio_test_hand_computed() {
        let (mut m, [x, ..], warm) = dual_test_parent();
        m.set_bounds(x, 0.0, 2.0);
        let mut child = SimplexSolver::from_model(&m);
        // Cutoff +∞: nothing to fathom against, so after reaching the
        // (primal-feasible) child optimum the warm path must hand the node
        // back to the cold solver rather than return values.
        let outcome = child.warm_resolve(&warm, f64::INFINITY);
        assert_eq!(outcome, WarmOutcome::GiveUp { iterations: 1 });
        assert_eq!(child.dual_iterations, 1);
        // The single pivot landed exactly on the hand-computed vertex.
        assert!((child.x[0] - 2.0).abs() < 1e-9, "x = {}", child.x[0]);
        assert!((child.x[1] - 2.0).abs() < 1e-9, "y = {}", child.x[1]);
        assert!(child.x[2].abs() < 1e-9, "z = {}", child.x[2]);
    }

    /// Same child, but with an incumbent-derived cutoff of 5: the dual
    /// bound after the single pivot is 6 ≥ 5, so the node is fathomed
    /// without ever producing primal values.
    #[test]
    fn dual_resolve_fathoms_against_cutoff() {
        let (mut m, [x, ..], warm) = dual_test_parent();
        m.set_bounds(x, 0.0, 2.0);
        let mut child = SimplexSolver::from_model(&m);
        let outcome = child.warm_resolve(&warm, 5.0);
        assert_eq!(outcome, WarmOutcome::Fathomed { iterations: 1 });
        // A cutoff above the child optimum must NOT fathom.
        let mut child = SimplexSolver::from_model(&m);
        assert_eq!(
            child.warm_resolve(&warm, 7.0),
            WarmOutcome::GiveUp { iterations: 1 }
        );
    }

    /// Tightening to `x ≤ 2, y ≤ 1, z = 0` caps `x + y + z` at 3 < 4. The
    /// dual loop flips `y` to its upper bound (ratio 1, range 1 — too
    /// short to absorb the violation of 2), finds no blocker left (`z` is
    /// fixed and the `≥` slack sits on the wrong side), and the residual
    /// slope of 1 clears the Farkas margin: certified infeasible.
    #[test]
    fn dual_resolve_certifies_infeasibility() {
        let (mut m, [x, y, z], warm) = dual_test_parent();
        m.set_bounds(x, 0.0, 2.0);
        m.set_bounds(y, 0.0, 1.0);
        m.set_bounds(z, 0.0, 0.0);
        let mut child = SimplexSolver::from_model(&m);
        let outcome = child.warm_resolve(&warm, f64::INFINITY);
        assert_eq!(outcome, WarmOutcome::Infeasible { iterations: 1 });
        // The cold path must agree — the certificate margin guarantees it.
        assert_eq!(SimplexSolver::from_model(&m).solve(), LpOutcome::Infeasible);
    }

    /// A shape-mismatched snapshot (different model) degrades to `GiveUp`
    /// instead of corrupting the solve.
    #[test]
    fn dual_resolve_rejects_foreign_snapshot() {
        let (m, ..) = dual_test_lp();
        let mut other = Model::new();
        let w = other.add_continuous("w", 0.0, 1.0);
        other.add_constraint("c", LinExpr::from(w).le(1.0));
        let mut solver = SimplexSolver::from_model(&other);
        let _ = solver.solve();
        let foreign = solver.snapshot();
        let mut child = SimplexSolver::from_model(&m);
        assert_eq!(
            child.warm_resolve(&foreign, 0.0),
            WarmOutcome::GiveUp { iterations: 0 }
        );
    }

    #[test]
    fn larger_random_like_lp() {
        // A transportation-style LP with known optimum.
        // Supplies: 20, 30; demands: 10, 25, 15.
        // Costs: [[2, 3, 1], [5, 4, 8]].
        // Optimal: ship x13=15, x11=5 (cost 2·5+1·15=25) … check via solver
        // against value computed by hand: north-west-ish optimum is 185? We
        // just assert feasibility + optimality invariants instead of a
        // hand-computed number, then cross-check the objective against a
        // brute-force LP vertex enumeration for this small case elsewhere.
        let mut m = Model::new();
        let mut x = Vec::new();
        for i in 0..2 {
            for j in 0..3 {
                x.push(m.add_continuous(format!("x{i}{j}"), 0.0, f64::INFINITY));
            }
        }
        let costs = [2.0, 3.0, 1.0, 5.0, 4.0, 8.0];
        m.add_constraint("s0", (x[0] + x[1] + x[2]).le(20.0));
        m.add_constraint("s1", (x[3] + x[4] + x[5]).le(30.0));
        m.add_constraint("d0", (x[0] + x[3]).ge(10.0));
        m.add_constraint("d1", (x[1] + x[4]).ge(25.0));
        m.add_constraint("d2", (x[2] + x[5]).ge(15.0));
        let obj = LinExpr::weighted_sum(x.iter().copied().zip(costs));
        m.set_objective(ObjectiveSense::Minimize, obj);
        match solve(&m) {
            LpOutcome::Optimal { values, objective } => {
                // Verify feasibility of the returned vertex.
                assert!(values.iter().all(|&v| v >= -1e-7));
                assert!(values[0] + values[1] + values[2] <= 20.0 + 1e-6);
                assert!(values[0] + values[3] >= 10.0 - 1e-6);
                // Optimal plan: x02=15, x00=5 → cost 25 on row 0; then
                // demand d1 = 25 from x01? capacity left 0 … let the
                // optimum be checked numerically: any feasible plan costs
                // ≥ 145 (x02=15,x00=5,x01=0,x04=25,x03=5 → 2·5+1·15+4·25+5·5=150).
                // Enumerated optimum is 145: x00=10,x01=0? 2·10+1·15=35? then
                // x04=25 → 100, total 135. Recheck: supplies 20 row0: x00=5,
                // x02=15 uses 20. x03=5,x04=25 uses 30. Total=10+25+15 ✓,
                // cost=2·5+1·15+5·5+4·25=10+15+25+100=150.
                // Alternative: x00=10, x02=10 (20), x04=25, x05=5 (30):
                // cost=20+10+100+40=170. Or x01=5,x02=15 (20), x03=10,x04=20:
                // 15+15+50+80=160. So 150 is best of these; trust but bound:
                assert!(objective <= 150.0 + 1e-6, "objective {objective}");
                assert!(objective >= 100.0);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    /// An already-expired deadline stops the cold primal path before the
    /// first pivot: the deadline poll runs at iteration 0, so the solver
    /// never prices a column and reports `TimedOut` instead of burning
    /// the node's budget.
    #[test]
    fn expired_deadline_times_out_cold_solve() {
        let (m, _) = dual_test_lp();
        let mut lp = SimplexSolver::from_model(&m);
        lp.deadline = Some(Instant::now());
        assert_eq!(lp.solve(), LpOutcome::TimedOut);
        assert_eq!(lp.iterations, 0, "no pivots after the deadline");
    }

    /// The warm dual path honors the same deadline contract: an expired
    /// deadline yields `GiveUp` at iteration 0, handing the node back to
    /// the caller (which owns the retry/fallback policy) rather than
    /// pivoting past its budget.
    #[test]
    fn expired_deadline_gives_up_warm_resolve() {
        let (mut m, [x, ..], warm) = dual_test_parent();
        m.set_bounds(x, 0.0, 2.0);
        let mut child = SimplexSolver::from_model(&m);
        child.deadline = Some(Instant::now());
        assert_eq!(
            child.warm_resolve(&warm, 5.0),
            WarmOutcome::GiveUp { iterations: 0 }
        );
    }
}
