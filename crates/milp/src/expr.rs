//! Linear expressions over model variables.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// A variable handle returned by [`crate::Model`] when a variable is added.
///
/// `Var` is a cheap copyable index; it is only meaningful together with the
/// model that created it.
///
/// # Examples
///
/// ```
/// use milp::Model;
///
/// let mut m = Model::new();
/// let x = m.add_binary("x");
/// let y = m.add_binary("y");
/// let expr = 2.0 * x + y - 1.0;
/// assert_eq!(expr.coefficient(x), 2.0);
/// assert_eq!(expr.constant(), -1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub(crate) u32);

impl Var {
    /// The dense column index of this variable in its model.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A linear expression `Σ cᵢ·xᵢ + k`.
///
/// Expressions are built with the usual `+`, `-` and `*` operators from
/// [`Var`]s and `f64` scalars; like terms are combined eagerly so an
/// expression is always in canonical (sorted, deduplicated) form.
///
/// # Examples
///
/// ```
/// use milp::{LinExpr, Model};
///
/// let mut m = Model::new();
/// let x = m.add_binary("x");
/// let y = m.add_binary("y");
///
/// let e = 3.0 * x + 2.0 * y + x; // combines to 4x + 2y
/// assert_eq!(e.coefficient(x), 4.0);
///
/// let sum: LinExpr = [x, y].iter().map(|&v| LinExpr::from(v)).sum();
/// assert_eq!(sum.coefficient(y), 1.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinExpr {
    /// Sorted, zero-free coefficient map.
    terms: BTreeMap<Var, f64>,
    constant: f64,
}

impl LinExpr {
    /// The zero expression.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An expression consisting of the single constant `k`.
    #[must_use]
    pub fn constant_term(k: f64) -> Self {
        Self {
            terms: BTreeMap::new(),
            constant: k,
        }
    }

    /// Builds `Σ coeff·var` from an iterator of `(var, coeff)` pairs.
    #[must_use]
    pub fn weighted_sum<I: IntoIterator<Item = (Var, f64)>>(pairs: I) -> Self {
        let mut e = Self::new();
        for (v, c) in pairs {
            e.add_term(v, c);
        }
        e
    }

    /// Adds `coeff · var` in place.
    pub fn add_term(&mut self, var: Var, coeff: f64) {
        if coeff == 0.0 {
            return;
        }
        let entry = self.terms.entry(var).or_insert(0.0);
        *entry += coeff;
        if *entry == 0.0 {
            self.terms.remove(&var);
        }
    }

    /// Adds a constant in place.
    pub fn add_constant(&mut self, k: f64) {
        self.constant += k;
    }

    /// The coefficient of `var` (zero when absent).
    #[must_use]
    pub fn coefficient(&self, var: Var) -> f64 {
        self.terms.get(&var).copied().unwrap_or(0.0)
    }

    /// The constant term `k`.
    #[must_use]
    pub fn constant(&self) -> f64 {
        self.constant
    }

    /// Iterates over the nonzero `(var, coeff)` terms in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (Var, f64)> + '_ {
        self.terms.iter().map(|(&v, &c)| (v, c))
    }

    /// Number of nonzero terms.
    #[must_use]
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// `true` when the expression has no variable terms (it may still have a
    /// nonzero constant).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Evaluates the expression for the given variable assignment.
    ///
    /// `values[i]` is the value of the variable with index `i`.
    ///
    /// # Panics
    ///
    /// Panics if a referenced variable index is out of range.
    #[must_use]
    pub fn evaluate(&self, values: &[f64]) -> f64 {
        self.constant
            + self
                .terms
                .iter()
                .map(|(v, c)| c * values[v.index()])
                .sum::<f64>()
    }

    /// Builds the comparison `self ≤ rhs` as a model constraint body.
    #[must_use]
    pub fn le(self, rhs: impl Into<LinExpr>) -> crate::model::Comparison {
        crate::model::Comparison::new(self, crate::model::Sense::Le, rhs.into())
    }

    /// Builds the comparison `self ≥ rhs`.
    #[must_use]
    pub fn ge(self, rhs: impl Into<LinExpr>) -> crate::model::Comparison {
        crate::model::Comparison::new(self, crate::model::Sense::Ge, rhs.into())
    }

    /// Builds the comparison `self = rhs`.
    #[must_use]
    pub fn eq(self, rhs: impl Into<LinExpr>) -> crate::model::Comparison {
        crate::model::Comparison::new(self, crate::model::Sense::Eq, rhs.into())
    }
}

impl From<Var> for LinExpr {
    fn from(v: Var) -> Self {
        let mut e = Self::new();
        e.add_term(v, 1.0);
        e
    }
}

impl From<f64> for LinExpr {
    fn from(k: f64) -> Self {
        Self::constant_term(k)
    }
}

impl Add for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: LinExpr) -> LinExpr {
        for (v, c) in rhs.terms {
            self.add_term(v, c);
        }
        self.constant += rhs.constant;
        self
    }
}

impl AddAssign for LinExpr {
    fn add_assign(&mut self, rhs: LinExpr) {
        for (v, c) in rhs.terms {
            self.add_term(v, c);
        }
        self.constant += rhs.constant;
    }
}

impl Sub for LinExpr {
    type Output = LinExpr;
    fn sub(self, rhs: LinExpr) -> LinExpr {
        self + (-rhs)
    }
}

impl SubAssign for LinExpr {
    fn sub_assign(&mut self, rhs: LinExpr) {
        *self += -rhs;
    }
}

impl Neg for LinExpr {
    type Output = LinExpr;
    fn neg(mut self) -> LinExpr {
        for c in self.terms.values_mut() {
            *c = -*c;
        }
        self.constant = -self.constant;
        self
    }
}

impl Mul<f64> for LinExpr {
    type Output = LinExpr;
    fn mul(mut self, k: f64) -> LinExpr {
        if k == 0.0 {
            return LinExpr::new();
        }
        for c in self.terms.values_mut() {
            *c *= k;
        }
        self.constant *= k;
        self
    }
}

impl Mul<LinExpr> for f64 {
    type Output = LinExpr;
    fn mul(self, e: LinExpr) -> LinExpr {
        e * self
    }
}

// Var-level sugar: Var + Var, f64 * Var, Var + f64, Var - Var, …

impl Add<Var> for Var {
    type Output = LinExpr;
    fn add(self, rhs: Var) -> LinExpr {
        LinExpr::from(self) + LinExpr::from(rhs)
    }
}

impl Add<LinExpr> for Var {
    type Output = LinExpr;
    fn add(self, rhs: LinExpr) -> LinExpr {
        LinExpr::from(self) + rhs
    }
}

impl Add<Var> for LinExpr {
    type Output = LinExpr;
    fn add(self, rhs: Var) -> LinExpr {
        self + LinExpr::from(rhs)
    }
}

impl Add<f64> for Var {
    type Output = LinExpr;
    fn add(self, rhs: f64) -> LinExpr {
        LinExpr::from(self) + LinExpr::constant_term(rhs)
    }
}

impl Add<f64> for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: f64) -> LinExpr {
        self.constant += rhs;
        self
    }
}

impl Sub<Var> for Var {
    type Output = LinExpr;
    fn sub(self, rhs: Var) -> LinExpr {
        LinExpr::from(self) - LinExpr::from(rhs)
    }
}

impl Sub<LinExpr> for Var {
    type Output = LinExpr;
    fn sub(self, rhs: LinExpr) -> LinExpr {
        LinExpr::from(self) - rhs
    }
}

impl Sub<Var> for LinExpr {
    type Output = LinExpr;
    fn sub(self, rhs: Var) -> LinExpr {
        self - LinExpr::from(rhs)
    }
}

impl Sub<f64> for Var {
    type Output = LinExpr;
    fn sub(self, rhs: f64) -> LinExpr {
        LinExpr::from(self) + LinExpr::constant_term(-rhs)
    }
}

impl Sub<f64> for LinExpr {
    type Output = LinExpr;
    fn sub(mut self, rhs: f64) -> LinExpr {
        self.constant -= rhs;
        self
    }
}

impl Mul<f64> for Var {
    type Output = LinExpr;
    fn mul(self, k: f64) -> LinExpr {
        LinExpr::from(self) * k
    }
}

impl Mul<Var> for f64 {
    type Output = LinExpr;
    fn mul(self, v: Var) -> LinExpr {
        LinExpr::from(v) * self
    }
}

impl Neg for Var {
    type Output = LinExpr;
    fn neg(self) -> LinExpr {
        -LinExpr::from(self)
    }
}

impl std::iter::Sum for LinExpr {
    fn sum<I: Iterator<Item = LinExpr>>(iter: I) -> LinExpr {
        iter.fold(LinExpr::new(), Add::add)
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (v, c) in &self.terms {
            if first {
                if c < &0.0 {
                    write!(f, "-")?;
                }
            } else if c < &0.0 {
                write!(f, " - ")?;
            } else {
                write!(f, " + ")?;
            }
            let a = c.abs();
            if (a - 1.0).abs() > f64::EPSILON {
                write!(f, "{a} {v}")?;
            } else {
                write!(f, "{v}")?;
            }
            first = false;
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if self.constant > 0.0 {
            write!(f, " + {}", self.constant)?;
        } else if self.constant < 0.0 {
            write!(f, " - {}", -self.constant)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vars() -> (Var, Var, Var) {
        (Var(0), Var(1), Var(2))
    }

    #[test]
    fn combines_like_terms() {
        let (x, y, _) = vars();
        let e = 3.0 * x + 2.0 * y + x * 1.0 - 4.0 * y;
        assert_eq!(e.coefficient(x), 4.0);
        assert_eq!(e.coefficient(y), -2.0);
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn zero_coefficients_removed() {
        let (x, y, _) = vars();
        let e = x + y - x * 1.0;
        assert_eq!(e.coefficient(x), 0.0);
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn scaling_and_negation() {
        let (x, y, _) = vars();
        let e = (x + 2.0 * y + 1.0) * 2.0;
        assert_eq!(e.coefficient(x), 2.0);
        assert_eq!(e.coefficient(y), 4.0);
        assert_eq!(e.constant(), 2.0);
        let n = -e;
        assert_eq!(n.coefficient(y), -4.0);
        assert_eq!(n.constant(), -2.0);
    }

    #[test]
    fn multiply_by_zero_clears() {
        let (x, ..) = vars();
        let e = (3.0 * x + 5.0) * 0.0;
        assert!(e.is_empty());
        assert_eq!(e.constant(), 0.0);
    }

    #[test]
    fn evaluation() {
        let (x, y, z) = vars();
        let e = 2.0 * x - y + 0.5 * z + 3.0;
        assert_eq!(e.evaluate(&[1.0, 4.0, 2.0]), 2.0 - 4.0 + 1.0 + 3.0);
    }

    #[test]
    fn weighted_sum_builder() {
        let (x, y, _) = vars();
        let e = LinExpr::weighted_sum([(x, 1.5), (y, -2.0), (x, 0.5)]);
        assert_eq!(e.coefficient(x), 2.0);
        assert_eq!(e.coefficient(y), -2.0);
    }

    #[test]
    fn sum_iterator() {
        let (x, y, z) = vars();
        let total: LinExpr = [x, y, z].iter().map(|&v| LinExpr::from(v)).sum();
        assert_eq!(total.len(), 3);
        assert_eq!(total.coefficient(z), 1.0);
    }

    #[test]
    fn display_formats() {
        let (x, y, _) = vars();
        assert_eq!((2.0 * x + y - 3.0).to_string(), "2 x0 + x1 - 3");
        assert_eq!((-1.0 * x).to_string(), "-x0");
        assert_eq!(LinExpr::constant_term(7.0).to_string(), "7");
        assert_eq!(LinExpr::new().to_string(), "0");
    }

    #[test]
    fn var_scalar_sugar() {
        let (x, y, _) = vars();
        let e = x - 1.0 + (y + 2.0);
        assert_eq!(e.constant(), 1.0);
        let e2 = x - y;
        assert_eq!(e2.coefficient(y), -1.0);
        let e3 = -x;
        assert_eq!(e3.coefficient(x), -1.0);
    }
}
