//! Branch and bound over the LP relaxation.
//!
//! The search is *best-first* (nodes ordered by their parent's LP bound, ties
//! broken depth-first so the solver dives early for incumbents), branches on
//! the most fractional integral variable, and is *anytime*: a warm-start
//! assignment or any rounded LP solution becomes an incumbent immediately, so
//! hitting the time or node limit still returns the best feasible solution
//! found together with the proven bound.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::error::Error;
use std::fmt;
use std::time::{Duration, Instant};

use letdma_core::instrument::{Counter, IncumbentRecord, Instrument, NodeEvent, NoopInstrument};

use crate::expr::Var;
use crate::model::{Model, ObjectiveSense};
use crate::simplex::{LpOutcome, SimplexSolver};

/// Options controlling [`Model::solve`].
#[derive(Debug, Clone)]
pub struct SolveOptions {
    /// Wall-clock budget; `None` means unlimited.
    pub time_limit: Option<Duration>,
    /// Maximum number of branch-and-bound nodes; `None` means unlimited.
    pub node_limit: Option<u64>,
    /// A value within this distance of an integer counts as integral.
    pub integrality_tol: f64,
    /// Stop when `|incumbent − bound| ≤ gap_abs`.
    pub gap_abs: f64,
    /// A known-feasible assignment used as the initial incumbent.
    pub warm_start: Option<Vec<f64>>,
    /// Emit progress lines on stderr.
    pub log: bool,
}

impl Default for SolveOptions {
    fn default() -> Self {
        Self {
            time_limit: None,
            node_limit: None,
            integrality_tol: 1e-6,
            gap_abs: 1e-6,
            warm_start: None,
            log: false,
        }
    }
}

impl SolveOptions {
    /// Convenience: a time-limited configuration.
    #[must_use]
    pub fn with_time_limit(limit: Duration) -> Self {
        Self {
            time_limit: Some(limit),
            ..Self::default()
        }
    }
}

/// How good the returned solution is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolveStatus {
    /// Proven optimal (within the gap tolerance).
    Optimal,
    /// Feasible but a limit stopped the proof of optimality.
    Feasible,
}

/// Search statistics of one solve.
///
/// Finer-grained data — per-phase wall clock, node outcome breakdown, the
/// incumbent timeline — flows through the [`letdma_core::Instrument`]
/// observer passed to [`Model::solve_with`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveStats {
    /// Branch-and-bound nodes processed.
    pub nodes: u64,
    /// Total simplex iterations across all LP solves.
    pub lp_iterations: u64,
    /// Simplex basis changes (pivots) across all LP solves.
    pub pivots: u64,
    /// Nonbasic bound-to-bound flips across all LP solves.
    pub bound_flips: u64,
    /// Basis refactorizations across all LP solves.
    pub refactorizations: u64,
    /// Wall-clock time spent.
    pub elapsed: Duration,
    /// Best proven bound on the optimum (in the model's objective sense);
    /// `None` when the search tree was exhausted before any bound was left.
    pub best_bound: Option<f64>,
}

/// A feasible (possibly optimal) MILP solution.
#[derive(Debug, Clone, PartialEq)]
pub struct MilpSolution {
    status: SolveStatus,
    values: Vec<f64>,
    objective: f64,
    stats: SolveStats,
}

impl MilpSolution {
    /// Whether the solution is proven optimal.
    #[must_use]
    pub fn status(&self) -> SolveStatus {
        self.status
    }

    /// The value of one variable.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to the solved model.
    #[must_use]
    pub fn value(&self, var: Var) -> f64 {
        self.values[var.index()]
    }

    /// All variable values, indexed by [`Var::index`].
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The objective value in the model's own sense.
    #[must_use]
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Search statistics.
    #[must_use]
    pub fn stats(&self) -> &SolveStats {
        &self.stats
    }
}

/// Why no solution could be returned.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SolveError {
    /// The constraints admit no solution.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
    /// A limit (time/nodes/iterations) was reached before any feasible
    /// solution was found; the best proven bound so far is attached when
    /// one exists.
    LimitReached {
        /// Best bound in the model's objective sense, if any LP solved.
        best_bound: Option<f64>,
    },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Infeasible => write!(f, "model is infeasible"),
            Self::Unbounded => write!(f, "model is unbounded"),
            Self::LimitReached { best_bound } => match best_bound {
                Some(b) => write!(f, "limit reached without a feasible solution (bound {b})"),
                None => write!(f, "limit reached without a feasible solution"),
            },
        }
    }
}

impl Error for SolveError {}

/// One open branch-and-bound node.
#[derive(Debug, Clone)]
struct Node {
    /// Bound overrides accumulated from the root: `(var, lower, upper)`.
    overrides: Vec<(Var, f64, f64)>,
    /// Parent LP bound in minimization form (the node can't do better).
    bound: f64,
    depth: u32,
    /// Creation sequence: on equal bounds the most recently created node is
    /// explored first (LIFO), turning tie regions into depth-first dives —
    /// crucial for finding incumbents in feasibility problems.
    seq: u64,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound && self.seq == other.seq
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: smaller bound = higher priority, then
        // most recently created first (LIFO dive).
        other
            .bound
            .partial_cmp(&self.bound)
            .unwrap_or(Ordering::Equal)
            .then(self.seq.cmp(&other.seq))
    }
}

impl Model {
    /// Solves the model with branch and bound over the built-in simplex.
    ///
    /// The solver is *anytime*: with a [`SolveOptions::time_limit`] it
    /// returns the best feasible solution found so far (status
    /// [`SolveStatus::Feasible`]) instead of failing, provided any incumbent
    /// exists.
    ///
    /// # Errors
    ///
    /// * [`SolveError::Infeasible`] — no assignment satisfies the constraints;
    /// * [`SolveError::Unbounded`] — the LP relaxation is unbounded;
    /// * [`SolveError::LimitReached`] — a limit was hit before any feasible
    ///   solution was found.
    ///
    /// # Examples
    ///
    /// ```
    /// use milp::{Model, ObjectiveSense, SolveOptions, SolveStatus};
    ///
    /// // max x + y  s.t.  2x + y ≤ 3, integral
    /// let mut m = Model::new();
    /// let x = m.add_integer("x", 0.0, 10.0);
    /// let y = m.add_integer("y", 0.0, 10.0);
    /// m.add_constraint("cap", (2.0 * x + y).le(3.0));
    /// m.set_objective(ObjectiveSense::Maximize, x + y);
    /// let s = m.solve(&SolveOptions::default())?;
    /// assert_eq!(s.status(), SolveStatus::Optimal);
    /// assert_eq!(s.objective().round(), 3.0); // x = 0, y = 3
    /// # Ok::<(), milp::SolveError>(())
    /// ```
    pub fn solve(&self, options: &SolveOptions) -> Result<MilpSolution, SolveError> {
        self.solve_with(options, &mut NoopInstrument)
    }

    /// Like [`solve`](Model::solve), reporting search progress — simplex
    /// iteration/pivot/refactorization counters, branch-and-bound node
    /// events and the incumbent timeline — through `instrument`.
    ///
    /// # Errors
    ///
    /// Same as [`solve`](Model::solve).
    pub fn solve_with(
        &self,
        options: &SolveOptions,
        instrument: &mut dyn Instrument,
    ) -> Result<MilpSolution, SolveError> {
        BranchAndBound::new(self, options, instrument).run()
    }
}

/// Internal search driver.
struct BranchAndBound<'a> {
    model: &'a Model,
    options: &'a SolveOptions,
    instrument: &'a mut dyn Instrument,
    /// ±1 factor converting the model objective into minimization form.
    scale: f64,
    start: Instant,
    nodes: u64,
    lp_iterations: u64,
    pivots: u64,
    bound_flips: u64,
    refactorizations: u64,
    incumbent: Option<(Vec<f64>, f64)>, // (values, min-form objective)
    /// Best (lowest) LP bound among open nodes, min-form.
    open: BinaryHeap<Node>,
    root_bound: Option<f64>,
    node_seq: u64,
}

impl<'a> BranchAndBound<'a> {
    fn new(
        model: &'a Model,
        options: &'a SolveOptions,
        instrument: &'a mut dyn Instrument,
    ) -> Self {
        let scale = match model.objective_sense() {
            ObjectiveSense::Minimize => 1.0,
            ObjectiveSense::Maximize => -1.0,
        };
        Self {
            model,
            options,
            instrument,
            scale,
            start: Instant::now(),
            nodes: 0,
            lp_iterations: 0,
            pivots: 0,
            bound_flips: 0,
            refactorizations: 0,
            incumbent: None,
            open: BinaryHeap::new(),
            root_bound: None,
            node_seq: 0,
        }
    }

    /// Model-sense objective → minimization form.
    fn to_min(&self, model_obj: f64) -> f64 {
        self.scale * model_obj
    }

    /// Minimization form → model-sense objective.
    fn to_model(&self, min_obj: f64) -> f64 {
        self.scale * min_obj
    }

    fn out_of_budget(&self) -> bool {
        if let Some(limit) = self.options.time_limit {
            if self.start.elapsed() >= limit {
                return true;
            }
        }
        if let Some(limit) = self.options.node_limit {
            if self.nodes >= limit {
                return true;
            }
        }
        false
    }

    fn consider_incumbent(&mut self, values: Vec<f64>, model_obj: f64) {
        let min_obj = self.to_min(model_obj);
        let better = match &self.incumbent {
            Some((_, best)) => min_obj < *best - 1e-12,
            None => true,
        };
        if better {
            if self.options.log {
                eprintln!(
                    "[milp] incumbent {:.6} after {} nodes, {:?}",
                    model_obj,
                    self.nodes,
                    self.start.elapsed()
                );
            }
            self.instrument.count(Counter::Incumbents, 1);
            self.instrument.incumbent(IncumbentRecord {
                objective: model_obj,
                nodes: self.nodes,
                elapsed: self.start.elapsed(),
            });
            self.incumbent = Some((values, min_obj));
        }
    }

    /// Try rounding an LP point to the nearest integral assignment.
    fn try_rounding(&mut self, lp_values: &[f64]) {
        let mut rounded = lp_values.to_vec();
        for (j, def) in self.model.vars.iter().enumerate() {
            if def.is_integral() {
                rounded[j] = rounded[j].round().clamp(def.lower, def.upper);
            }
        }
        if self.model.is_feasible(&rounded, 1e-6) {
            let obj = self.model.objective().evaluate(&rounded);
            self.consider_incumbent(rounded, obj);
        }
    }

    /// Most fractional integral variable of an LP point.
    fn pick_branch_var(&self, lp_values: &[f64]) -> Option<(Var, f64)> {
        let tol = self.options.integrality_tol;
        let mut best: Option<(Var, f64, f64)> = None; // (var, value, frac dist)
        for (j, def) in self.model.vars.iter().enumerate() {
            if !def.is_integral() {
                continue;
            }
            let v = lp_values[j];
            let frac = (v - v.round()).abs();
            if frac > tol {
                let dist_to_half = (frac - 0.5).abs();
                match best {
                    Some((_, _, d)) if dist_to_half >= d => {}
                    _ => best = Some((Var(j as u32), v, dist_to_half)),
                }
            }
        }
        best.map(|(v, val, _)| (v, val))
    }

    /// Solves the LP of one node; returns values and min-form objective.
    fn solve_node_lp(&mut self, overrides: &[(Var, f64, f64)]) -> NodeLp {
        // Apply overrides on a scratch copy of the model bounds.
        let mut scratch = self.model.clone();
        for &(v, l, u) in overrides {
            let def = scratch.var_def(v);
            let nl = def.lower().max(l);
            let nu = def.upper().min(u);
            if nl > nu {
                return NodeLp::Infeasible;
            }
            scratch.set_bounds(v, nl, nu);
        }
        let mut lp = SimplexSolver::from_model(&scratch);
        lp.deadline = self.options.time_limit.map(|limit| self.start + limit);
        let outcome = lp.solve();
        self.lp_iterations += lp.iterations;
        self.pivots += lp.pivots();
        self.bound_flips += lp.bound_flips;
        self.refactorizations += lp.refactorizations();
        self.instrument.count(Counter::LpSolves, 1);
        self.instrument
            .count(Counter::SimplexIterations, lp.iterations);
        self.instrument
            .count(Counter::Phase1Iterations, lp.phase1_iterations);
        self.instrument.count(Counter::Pivots, lp.pivots());
        self.instrument.count(Counter::BoundFlips, lp.bound_flips);
        self.instrument
            .count(Counter::Refactorizations, lp.refactorizations());
        match outcome {
            LpOutcome::Optimal { values, objective } => NodeLp::Solved {
                values,
                min_obj: self.to_min(objective),
            },
            LpOutcome::Infeasible => NodeLp::Infeasible,
            LpOutcome::Unbounded => NodeLp::Unbounded,
            LpOutcome::IterationLimit => NodeLp::Infeasible, // numerical brake: drop node
            LpOutcome::TimedOut => NodeLp::TimedOut,
        }
    }

    fn run(mut self) -> Result<MilpSolution, SolveError> {
        // Seed with the warm start, if it is actually feasible.
        if let Some(warm) = &self.options.warm_start {
            if self.model.is_feasible(warm, 1e-6) {
                let obj = self.model.objective().evaluate(warm);
                self.consider_incumbent(warm.clone(), obj);
                // Constant objective: any feasible point is optimal, no
                // search needed (pure feasibility problems with a known
                // solution).
                if self.model.objective().is_empty() {
                    let (values, min_obj) = self.incumbent.take().expect("just set");
                    return Ok(MilpSolution {
                        status: SolveStatus::Optimal,
                        objective: self.scale * min_obj,
                        values,
                        stats: SolveStats {
                            nodes: 0,
                            lp_iterations: 0,
                            pivots: 0,
                            bound_flips: 0,
                            refactorizations: 0,
                            elapsed: self.start.elapsed(),
                            best_bound: Some(self.scale * min_obj),
                        },
                    });
                }
            }
        }

        // `exhausted` stays true only when the whole tree was explored (so
        // the incumbent is proven optimal); any budget break clears it.
        let mut exhausted = true;

        // Root node.
        if self.out_of_budget() {
            exhausted = false;
        } else {
            self.nodes += 1;
            self.instrument.count(Counter::Nodes, 1);
            match self.solve_node_lp(&[]) {
                NodeLp::Infeasible => {
                    self.instrument.node_event(NodeEvent::Infeasible);
                    return Err(SolveError::Infeasible);
                }
                NodeLp::Unbounded => {
                    return Err(SolveError::Unbounded);
                }
                NodeLp::TimedOut => {
                    self.instrument.node_event(NodeEvent::Abandoned);
                    exhausted = false;
                }
                NodeLp::Solved { values, min_obj } => {
                    self.root_bound = Some(min_obj);
                    self.process_lp(values, min_obj, Vec::new(), 0);
                }
            }
        }

        // Main loop.
        while let Some(node) = self.open.pop() {
            // Global bound pruning.
            if let Some((_, inc)) = &self.incumbent {
                if node.bound >= *inc - self.options.gap_abs {
                    self.instrument.node_event(NodeEvent::FathomedByBound);
                    continue;
                }
            }
            if self.out_of_budget() {
                // Put the node back: its bound still counts for reporting.
                self.open.push(node);
                exhausted = false;
                break;
            }
            self.nodes += 1;
            self.instrument.count(Counter::Nodes, 1);
            match self.solve_node_lp(&node.overrides) {
                NodeLp::Infeasible => {
                    self.instrument.node_event(NodeEvent::Infeasible);
                }
                NodeLp::Unbounded => {
                    // With bounded integrals this cannot happen unless the
                    // model itself is unbounded; be conservative.
                    return Err(SolveError::Unbounded);
                }
                NodeLp::TimedOut => {
                    self.instrument.node_event(NodeEvent::Abandoned);
                    self.open.push(node);
                    exhausted = false;
                    break;
                }
                NodeLp::Solved { values, min_obj } => {
                    self.process_lp(values, min_obj, node.overrides, node.depth);
                }
            }
        }

        let proven_optimal = exhausted && self.open.is_empty();
        let best_bound_min = if proven_optimal {
            // The tree is exhausted: the incumbent *is* the bound.
            self.incumbent.as_ref().map(|(_, o)| *o)
        } else {
            self.open
                .iter()
                .map(|n| n.bound)
                .fold(None::<f64>, |acc, b| Some(acc.map_or(b, |a| a.min(b))))
                .or(self.root_bound)
        };

        let stats = SolveStats {
            nodes: self.nodes,
            lp_iterations: self.lp_iterations,
            pivots: self.pivots,
            bound_flips: self.bound_flips,
            refactorizations: self.refactorizations,
            elapsed: self.start.elapsed(),
            best_bound: best_bound_min.map(|b| self.to_model(b)),
        };

        match self.incumbent {
            Some((values, min_obj)) => Ok(MilpSolution {
                status: if proven_optimal {
                    SolveStatus::Optimal
                } else {
                    SolveStatus::Feasible
                },
                objective: self.scale * min_obj,
                values,
                stats,
            }),
            None if proven_optimal => Err(SolveError::Infeasible),
            None => Err(SolveError::LimitReached {
                best_bound: stats.best_bound,
            }),
        }
    }

    /// Handles a solved LP: fathom by bound, accept integral solutions, or
    /// branch.
    fn process_lp(
        &mut self,
        values: Vec<f64>,
        min_obj: f64,
        overrides: Vec<(Var, f64, f64)>,
        depth: u32,
    ) {
        if let Some((_, inc)) = &self.incumbent {
            if min_obj >= *inc - self.options.gap_abs {
                self.instrument.node_event(NodeEvent::FathomedByBound);
                return; // fathomed by bound
            }
        }
        match self.pick_branch_var(&values) {
            None => {
                self.instrument.node_event(NodeEvent::Integral);
                // Integral: snap and record.
                let mut snapped = values;
                for (j, def) in self.model.vars.iter().enumerate() {
                    if def.is_integral() {
                        snapped[j] = snapped[j].round();
                    }
                }
                let obj = self.model.objective().evaluate(&snapped);
                if self.model.is_feasible(&snapped, 1e-5) {
                    self.consider_incumbent(snapped, obj);
                } else {
                    // Rounding glitch: keep the LP value as incumbent basis.
                    self.consider_incumbent_unsnapped(min_obj);
                }
            }
            Some((var, value)) => {
                self.instrument.node_event(NodeEvent::Branched);
                self.try_rounding(&values);
                let floor = value.floor();
                let mut down = overrides.clone();
                down.push((var, f64::NEG_INFINITY, floor));
                let mut up = overrides;
                up.push((var, floor + 1.0, f64::INFINITY));
                // The child on the LP solution's side of the split is pushed
                // second (higher seq) so the LIFO tie-break dives into it
                // first.
                let frac_up = value - floor >= 0.5;
                let (first, second) = if frac_up { (down, up) } else { (up, down) };
                self.node_seq += 1;
                self.open.push(Node {
                    overrides: first,
                    bound: min_obj,
                    depth: depth + 1,
                    seq: self.node_seq,
                });
                self.node_seq += 1;
                self.open.push(Node {
                    overrides: second,
                    bound: min_obj,
                    depth: depth + 1,
                    seq: self.node_seq,
                });
            }
        }
    }

    fn consider_incumbent_unsnapped(&mut self, _min_obj: f64) {
        // Numerically marginal integral point; ignore (a cleaner point will
        // be found deeper in the tree).
    }
}

/// Outcome of one node LP.
enum NodeLp {
    Solved { values: Vec<f64>, min_obj: f64 },
    Infeasible,
    Unbounded,
    TimedOut,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinExpr;

    fn opts() -> SolveOptions {
        SolveOptions::default()
    }

    #[test]
    fn pure_lp_passthrough() {
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, 4.0);
        m.add_constraint("c", (2.0 * x).le(5.0));
        m.set_objective(ObjectiveSense::Maximize, LinExpr::from(x));
        let s = m.solve(&opts()).unwrap();
        assert_eq!(s.status(), SolveStatus::Optimal);
        assert!((s.objective() - 2.5).abs() < 1e-6);
        assert!((s.value(x) - 2.5).abs() < 1e-6);
    }

    #[test]
    fn knapsack_exact() {
        // Values/weights chosen so LP relaxation is fractional.
        let mut m = Model::new();
        let items = [(60.0, 10.0), (100.0, 20.0), (120.0, 30.0)];
        let vars: Vec<_> = items
            .iter()
            .enumerate()
            .map(|(i, _)| m.add_binary(format!("x{i}")))
            .collect();
        let weight = LinExpr::weighted_sum(vars.iter().copied().zip(items.iter().map(|i| i.1)));
        m.add_constraint("cap", weight.le(50.0));
        let value = LinExpr::weighted_sum(vars.iter().copied().zip(items.iter().map(|i| i.0)));
        m.set_objective(ObjectiveSense::Maximize, value);
        let s = m.solve(&opts()).unwrap();
        // Optimal: items 2 and 3 → 220.
        assert_eq!(s.status(), SolveStatus::Optimal);
        assert!((s.objective() - 220.0).abs() < 1e-6);
        assert!(s.value(vars[0]) < 0.5);
        assert!(s.value(vars[1]) > 0.5);
        assert!(s.value(vars[2]) > 0.5);
    }

    #[test]
    fn integer_rounding_is_not_assumed() {
        // LP optimum x = 2.5 but integral optimum is 2.
        let mut m = Model::new();
        let x = m.add_integer("x", 0.0, 10.0);
        m.add_constraint("c", (2.0 * x).le(5.0));
        m.set_objective(ObjectiveSense::Maximize, LinExpr::from(x));
        let s = m.solve(&opts()).unwrap();
        assert_eq!(s.objective().round(), 2.0);
        assert_eq!(s.status(), SolveStatus::Optimal);
    }

    #[test]
    fn infeasible_integrality() {
        // 0.4 ≤ x ≤ 0.6 has no integer point.
        let mut m = Model::new();
        let x = m.add_integer("x", 0.0, 1.0);
        m.add_constraint("lo", (10.0 * x).ge(4.0));
        m.add_constraint("hi", (10.0 * x).le(6.0));
        assert_eq!(m.solve(&opts()).unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn plain_infeasible() {
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, 1.0);
        m.add_constraint("c", LinExpr::from(x).ge(2.0));
        assert_eq!(m.solve(&opts()).unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn unbounded_reported() {
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        m.set_objective(ObjectiveSense::Maximize, LinExpr::from(x));
        assert_eq!(m.solve(&opts()).unwrap_err(), SolveError::Unbounded);
    }

    #[test]
    fn warm_start_becomes_incumbent() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.add_constraint("c", (x + y).le(1.0));
        m.set_objective(ObjectiveSense::Maximize, 2.0 * x + y);
        let options = SolveOptions {
            warm_start: Some(vec![0.0, 1.0]), // feasible, obj 1
            node_limit: Some(0),              // forbid any search
            ..SolveOptions::default()
        };
        let s = m.solve(&options).unwrap();
        // Node limit 0: the warm start is all we have.
        assert_eq!(s.status(), SolveStatus::Feasible);
        assert!((s.objective() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_warm_start_ignored() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        m.set_objective(ObjectiveSense::Maximize, LinExpr::from(x));
        let options = SolveOptions {
            warm_start: Some(vec![2.0]), // out of bounds
            ..SolveOptions::default()
        };
        let s = m.solve(&options).unwrap();
        assert!((s.objective() - 1.0).abs() < 1e-9);
        assert_eq!(s.status(), SolveStatus::Optimal);
    }

    #[test]
    fn equality_milp() {
        // x + y = 7, x − y = 1 over integers → x=4, y=3.
        let mut m = Model::new();
        let x = m.add_integer("x", 0.0, 10.0);
        let y = m.add_integer("y", 0.0, 10.0);
        m.add_constraint("sum", (x + y).eq(7.0));
        m.add_constraint("diff", (x - y).eq(1.0));
        m.set_objective(ObjectiveSense::Minimize, LinExpr::from(x));
        let s = m.solve(&opts()).unwrap();
        assert!((s.value(x) - 4.0).abs() < 1e-6);
        assert!((s.value(y) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn stats_populated() {
        let mut m = Model::new();
        let x = m.add_integer("x", 0.0, 10.0);
        m.add_constraint("c", (2.0 * x).le(5.0));
        m.set_objective(ObjectiveSense::Maximize, LinExpr::from(x));
        let s = m.solve(&opts()).unwrap();
        assert!(s.stats().nodes >= 1);
        assert!(s.stats().lp_iterations >= 1);
    }

    #[test]
    fn feasibility_problem_no_objective() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.add_constraint("pick", (x + y).eq(1.0));
        let s = m.solve(&opts()).unwrap();
        assert_eq!(s.status(), SolveStatus::Optimal);
        let total = s.value(x) + s.value(y);
        assert!((total - 1.0).abs() < 1e-6);
    }

    #[test]
    fn bigger_assignment_milp() {
        // 4×4 assignment problem with distinct costs; optimum is the
        // diagonal of the cost matrix after the greedy-safe construction
        // below (costs constructed so the identity matching is optimal).
        let n = 4;
        let mut m = Model::new();
        let mut x = vec![];
        for i in 0..n {
            for j in 0..n {
                x.push(m.add_binary(format!("x{i}{j}")));
            }
        }
        for i in 0..n {
            let row = LinExpr::weighted_sum((0..n).map(|j| (x[i * n + j], 1.0)));
            m.add_constraint(format!("row{i}"), row.eq(1.0));
            let col = LinExpr::weighted_sum((0..n).map(|j| (x[j * n + i], 1.0)));
            m.add_constraint(format!("col{i}"), col.eq(1.0));
        }
        // cost(i,j) = 1 + |i−j| → identity assignment costs 4, any
        // off-diagonal swap strictly more.
        let obj = LinExpr::weighted_sum((0..n * n).map(|k| {
            let (i, j) = (k / n, k % n);
            (x[k], 1.0 + (i as f64 - j as f64).abs())
        }));
        m.set_objective(ObjectiveSense::Minimize, obj);
        let s = m.solve(&opts()).unwrap();
        assert!((s.objective() - 4.0).abs() < 1e-6);
        for i in 0..n {
            assert!(s.value(x[i * n + i]) > 0.5, "diagonal {i} not chosen");
        }
    }

    #[test]
    fn error_display() {
        assert_eq!(SolveError::Infeasible.to_string(), "model is infeasible");
        assert!(SolveError::LimitReached { best_bound: None }
            .to_string()
            .contains("limit reached"));
    }
}
