//! Branch and bound over the LP relaxation, with a deterministic parallel
//! node evaluator.
//!
//! The search is *best-first* (nodes ordered by their parent's LP bound, ties
//! broken depth-first so the solver dives early for incumbents), branches on
//! the most fractional integral variable, and is *anytime*: a warm-start
//! assignment or any rounded LP solution becomes an incumbent immediately, so
//! hitting the time or node limit still returns the best feasible solution
//! found together with the proven bound.
//!
//! # Parallel search
//!
//! Node LPs are evaluated by a [`std::thread`]-scoped worker pool. The
//! search proceeds in *rounds*: the coordinator pops a fixed-width batch of
//! non-fathomed nodes from the best-first queue, the workers solve the
//! batch's LP relaxations concurrently (pruning speculatively against the
//! incumbent objective published through an atomic bound), and the
//! coordinator merges the results — fathoming, accepting incumbents,
//! branching — strictly in node-id order.
//!
//! Because the batch width ([`SolveOptions::speculation`]) is fixed
//! independently of the worker count, and because a worker-side skip is only
//! taken when the merge-time fathoming test is already guaranteed to discard
//! the node (the incumbent objective only ever improves), the merge sequence
//! — and with it every counter, node event, incumbent record and the
//! returned solution vector — is a pure function of the model and options.
//! Equal seeds yield byte-identical trajectories at 1, 2 or 64 threads.
//! Setting [`SolveOptions::deterministic`] to `false` merges results in
//! arrival order instead, which can propagate incumbents to the pruning
//! bound a little earlier at the cost of reproducibility.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap};
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering as AtomicOrdering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use letdma_core::env::{resolve_flag, resolve_override, CRASH_ENV, PRESOLVE_ENV, REFACTOR_ENV};
use letdma_core::fault::{self, FaultSite};
use letdma_core::instrument::{
    timed_phase, Counter, IncumbentRecord, Instrument, NodeEvent, NoopInstrument,
};
use letdma_core::parallel::resolve_threads;

use crate::basis::BasisKind;
use crate::expr::Var;
use crate::model::{Model, ObjectiveSense};
use crate::presolve;
use crate::pricing::PricingRule;
use crate::simplex::{LpOutcome, SimplexSolver, WarmBasis, WarmOutcome};

/// Options controlling a [`Model::solver`] session.
///
/// The struct is `#[non_exhaustive]`: build it with
/// [`SolveOptions::new`]/[`Default`] and the chainable `with_*` methods so
/// new knobs can be added without breaking downstream code.
///
/// ```
/// use std::time::Duration;
/// use milp::SolveOptions;
///
/// let opts = SolveOptions::new()
///     .with_time_limit(Duration::from_secs(5))
///     .with_threads(4);
/// assert_eq!(opts.threads, Some(4));
/// ```
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[non_exhaustive]
pub struct SolveOptions {
    /// Wall-clock budget; `None` means unlimited.
    pub time_limit: Option<Duration>,
    /// Maximum number of branch-and-bound nodes; `None` means unlimited.
    pub node_limit: Option<u64>,
    /// A value within this distance of an integer counts as integral.
    pub integrality_tol: f64,
    /// Stop when `|incumbent − bound| ≤ gap_abs`.
    pub gap_abs: f64,
    /// A known-feasible assignment used as the initial incumbent.
    pub warm_start: Option<Vec<f64>>,
    /// Emit progress lines on stderr.
    pub log: bool,
    /// Worker threads evaluating node LPs. `None` defers to the
    /// `LETDMA_THREADS` environment variable (default: sequential). The
    /// trajectory does not depend on this value in deterministic mode.
    pub threads: Option<usize>,
    /// Merge node results in node-id order (`true`, default), making the
    /// search trajectory independent of thread count and timing; `false`
    /// merges in arrival order (faster incumbent propagation, not
    /// reproducible across runs).
    pub deterministic: bool,
    /// Nodes popped per scheduling round — the window of LP relaxations
    /// solved concurrently (and hence the useful upper bound on
    /// [`threads`](Self::threads)). Part of the trajectory: two solves
    /// agree byte-for-byte only when their widths agree. Clamped to ≥ 1.
    pub speculation: usize,
    /// Warm-start node re-solves from the parent's optimal basis (`true`,
    /// default): each child node first attempts a dual-simplex re-solve
    /// that can fathom the node against the incumbent or certify
    /// infeasibility without a cold solve, falling back to the cold primal
    /// path otherwise. By construction the search trajectory — solutions,
    /// node counts, incumbent timeline — is identical either way (the warm
    /// path only certifies outcomes the cold path is guaranteed to reach);
    /// only the iteration/pivot work counters differ. Distinct from
    /// [`warm_start`](Self::warm_start), which seeds an *incumbent
    /// assignment*, not a basis.
    pub warm_basis: bool,
    /// Run the presolve/tightening pass ([`crate::presolve`]) ahead of
    /// branch and bound. `None` (default) defers to the `LETDMA_PRESOLVE`
    /// environment variable, else on. Presolve runs on the coordinator
    /// before any worker is spawned, so the reduced-model trajectory stays
    /// byte-identical at any thread count; turning it off reproduces the
    /// unreduced trajectory.
    pub presolve: Option<bool>,
    /// Also solve the *original* model's root LP and report the presolve
    /// improvement as `Counter::RootGapBps` (off by default: it costs one
    /// extra LP per solve and is a measurement, not part of the search).
    pub measure_root_gap: bool,
    /// Simplex basis representation for every node LP. `None` (default)
    /// defers to the `LETDMA_BASIS` environment variable, else sparse LU
    /// ([`BasisKind::Sparse`]); [`BasisKind::Dense`] selects the explicit
    /// inverse retained as the differential oracle. The choice is resolved
    /// once per solve, so every node runs on the same representation.
    pub basis: Option<BasisKind>,
    /// Basis refactorization cadence in pivot updates. `None` (default)
    /// defers to the `LETDMA_REFACTOR` environment variable, else to the
    /// per-basis default (sparse LU rebuilds every 128 updates plus a
    /// fill-in-growth trigger; the dense inverse every 512). The resolved
    /// value is reported as `Counter::RefactorCadence`.
    pub refactor_interval: Option<u64>,
    /// Simplex entering-variable pricing rule. `None` (default) defers to
    /// the `LETDMA_PRICING` environment variable, else partial pricing
    /// ([`PricingRule::Partial`]). Resolved once per solve; the rule never
    /// changes *which* optimum is found, only the pivot path to it.
    pub pricing: Option<PricingRule>,
    /// Run the crash-basis constructor ([`crate::crash`]) before phase 1
    /// of every cold node LP: rows whose slack cannot absorb the starting
    /// residual try a singleton structural column before an artificial, so
    /// fewer rows feed phase 1. `None` (default) defers to the
    /// `LETDMA_CRASH` environment variable, else **off** — the crash
    /// changes pivot paths and possibly which optimal vertex is returned
    /// (never the objective), so the byte-identical trajectory regressions
    /// pin the crash-free default. Resolved once per solve.
    pub crash: Option<bool>,
    /// Absolute wall-clock deadline for the whole solve. Checked before
    /// any presolve or simplex work: an already-expired deadline returns
    /// [`SolveError::DeadlineExpired`] without touching the model.
    /// Otherwise the remaining time tightens
    /// [`time_limit`](Self::time_limit) (the smaller of the two wins), so
    /// an in-flight expiry degrades to the anytime behavior: the best
    /// incumbent is returned. Set by the serve admission layer, which
    /// stamps each request's deadline at admission.
    ///
    /// Not serialized: an `Instant` is process-local. A wire layer ships
    /// the *remaining* duration and re-stamps on receipt.
    #[cfg_attr(feature = "serde", serde(skip))]
    pub deadline: Option<Instant>,
}

impl Default for SolveOptions {
    fn default() -> Self {
        Self {
            time_limit: None,
            node_limit: None,
            integrality_tol: 1e-6,
            gap_abs: 1e-6,
            warm_start: None,
            log: false,
            threads: None,
            deterministic: true,
            speculation: 8,
            warm_basis: true,
            presolve: None,
            measure_root_gap: false,
            basis: None,
            refactor_interval: None,
            pricing: None,
            crash: None,
            deadline: None,
        }
    }
}

impl SolveOptions {
    /// Default options (alias of [`Default::default`], reads better at the
    /// head of a `with_*` chain).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the wall-clock budget.
    #[must_use]
    pub fn with_time_limit(mut self, limit: Duration) -> Self {
        self.time_limit = Some(limit);
        self
    }

    /// Sets the branch-and-bound node budget.
    #[must_use]
    pub fn with_node_limit(mut self, limit: u64) -> Self {
        self.node_limit = Some(limit);
        self
    }

    /// Sets the integrality tolerance.
    #[must_use]
    pub fn with_integrality_tol(mut self, tol: f64) -> Self {
        self.integrality_tol = tol;
        self
    }

    /// Sets the absolute optimality gap.
    #[must_use]
    pub fn with_gap_abs(mut self, gap: f64) -> Self {
        self.gap_abs = gap;
        self
    }

    /// Seeds the search with a known-feasible assignment.
    #[must_use]
    pub fn with_warm_start(mut self, assignment: Vec<f64>) -> Self {
        self.warm_start = Some(assignment);
        self
    }

    /// Enables or disables stderr progress lines.
    #[must_use]
    pub fn with_log(mut self, log: bool) -> Self {
        self.log = log;
        self
    }

    /// Requests an explicit worker-thread count (clamped to ≥ 1).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Selects deterministic (node-id-ordered) or opportunistic
    /// (arrival-ordered) result merging.
    #[must_use]
    pub fn with_deterministic(mut self, deterministic: bool) -> Self {
        self.deterministic = deterministic;
        self
    }

    /// Sets the per-round speculation window (clamped to ≥ 1).
    #[must_use]
    pub fn with_speculation(mut self, width: usize) -> Self {
        self.speculation = width.max(1);
        self
    }

    /// Enables or disables warm (dual-simplex) node re-solves from the
    /// parent basis (see [`warm_basis`](Self::warm_basis)).
    #[must_use]
    pub fn with_warm_basis(mut self, warm_basis: bool) -> Self {
        self.warm_basis = warm_basis;
        self
    }

    /// Explicitly enables or disables the presolve pass (overriding the
    /// `LETDMA_PRESOLVE` environment variable; see
    /// [`presolve`](Self::presolve)).
    #[must_use]
    pub fn with_presolve(mut self, presolve: bool) -> Self {
        self.presolve = Some(presolve);
        self
    }

    /// Enables root-gap measurement (see
    /// [`measure_root_gap`](Self::measure_root_gap)).
    #[must_use]
    pub fn with_measure_root_gap(mut self, measure: bool) -> Self {
        self.measure_root_gap = measure;
        self
    }

    /// Pins the simplex basis representation (overriding the
    /// `LETDMA_BASIS` environment variable; see [`basis`](Self::basis)).
    #[must_use]
    pub fn with_basis(mut self, basis: BasisKind) -> Self {
        self.basis = Some(basis);
        self
    }

    /// Pins the basis refactorization cadence in pivot updates, clamped to
    /// ≥ 1 (overriding the `LETDMA_REFACTOR` environment variable; see
    /// [`refactor_interval`](Self::refactor_interval)).
    #[must_use]
    pub fn with_refactor_interval(mut self, interval: u64) -> Self {
        self.refactor_interval = Some(interval.max(1));
        self
    }

    /// Pins the simplex pricing rule (overriding the `LETDMA_PRICING`
    /// environment variable; see [`pricing`](Self::pricing)).
    #[must_use]
    pub fn with_pricing(mut self, pricing: PricingRule) -> Self {
        self.pricing = Some(pricing);
        self
    }

    /// Explicitly enables or disables the crash-basis constructor
    /// (overriding the `LETDMA_CRASH` environment variable; see
    /// [`crash`](Self::crash)).
    #[must_use]
    pub fn with_crash(mut self, crash: bool) -> Self {
        self.crash = Some(crash);
        self
    }

    /// Sets an absolute wall-clock deadline (see
    /// [`deadline`](Self::deadline)).
    #[must_use]
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// The per-node LP knobs of one solve, resolved once by the coordinator
/// (explicit option > environment variable > default) so every node —
/// inline, worker-pool or retry — runs the same configuration.
#[derive(Debug, Clone, Copy)]
struct LpConfig {
    basis: BasisKind,
    pricing: PricingRule,
    refactor_interval: u64,
    crash: bool,
}

impl LpConfig {
    fn resolve(options: &SolveOptions) -> Self {
        let basis = BasisKind::resolve(options.basis);
        let pricing = PricingRule::resolve(options.pricing);
        let refactor_interval = resolve_override(REFACTOR_ENV, options.refactor_interval)
            .unwrap_or_else(|| basis.instantiate().default_refactor_interval());
        let crash = resolve_flag(CRASH_ENV, options.crash, false);
        Self {
            basis,
            pricing,
            refactor_interval,
            crash,
        }
    }

    /// Builds a node LP solver on this configuration.
    fn solver(&self, model: &Model) -> SimplexSolver {
        let mut solver = SimplexSolver::from_model_configured(
            model,
            self.basis,
            self.pricing,
            Some(self.refactor_interval),
        );
        solver.crash = self.crash;
        solver
    }
}

/// A once-written, many-read slot through which sibling scenarios share a
/// root-basis snapshot (the cross-scenario rung of the warm ladder; see
/// DESIGN.md §"Warm-start architecture").
///
/// The **donor** solve publishes its root LP's optimal basis through
/// [`Solver::root_export`] (or `publish(None)` when the root never reached
/// an exportable basis — the owner of the slot must guarantee a publish so
/// waiters cannot hang). **Beneficiary** solves pass the published basis to
/// [`Solver::root_import`], after reading it with [`wait`](Self::wait)
/// (deterministic batch pipelines, where the donor is known to be running)
/// or [`get`](Self::get) (opportunistic serve reuse, which never blocks a
/// request on another one).
///
/// The first publish wins and later publishes are ignored, so racing
/// donors are harmless: every reader observes the same basis forever.
pub struct RootBasisSlot {
    state: std::sync::Mutex<Option<Option<Arc<WarmBasis>>>>,
    cond: std::sync::Condvar,
}

impl fmt::Debug for RootBasisSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = self.state.lock().expect("slot poisoned");
        f.debug_struct("RootBasisSlot")
            .field("published", &state.is_some())
            .field(
                "basis",
                &state.as_ref().map(|b| b.is_some()).unwrap_or(false),
            )
            .finish()
    }
}

impl Default for RootBasisSlot {
    fn default() -> Self {
        Self::new()
    }
}

impl RootBasisSlot {
    /// An empty (unpublished) slot.
    #[must_use]
    pub fn new() -> Self {
        Self {
            state: std::sync::Mutex::new(None),
            cond: std::sync::Condvar::new(),
        }
    }

    /// Publishes the donor's root basis (or `None` when the donor's root
    /// LP produced no exportable basis) and wakes every waiter. The first
    /// publish wins; later calls are ignored.
    pub fn publish(&self, basis: Option<Arc<WarmBasis>>) {
        let mut state = self.state.lock().expect("slot poisoned");
        if state.is_none() {
            *state = Some(basis);
            self.cond.notify_all();
        }
    }

    /// Non-blocking read: `None` while unpublished, otherwise the
    /// published value (which is itself `None` for a failed donor).
    #[must_use]
    pub fn get(&self) -> Option<Option<Arc<WarmBasis>>> {
        self.state.lock().expect("slot poisoned").clone()
    }

    /// Blocks until the donor publishes, then returns the published basis
    /// (`None` for a failed donor). Only safe where the donor is known to
    /// be running or finished — the deterministic batch pipeline
    /// guarantees this by dispensing the donor before its beneficiaries.
    #[must_use]
    pub fn wait(&self) -> Option<Arc<WarmBasis>> {
        let mut state = self.state.lock().expect("slot poisoned");
        while state.is_none() {
            state = self.cond.wait(state).expect("slot poisoned");
        }
        state.as_ref().expect("just checked").clone()
    }
}

/// The cross-scenario root hooks of one solve, threaded from the
/// [`Solver`] builder down to the branch-and-bound root node.
#[derive(Default)]
struct RootHooks {
    import: Option<Arc<WarmBasis>>,
    export: Option<Arc<RootBasisSlot>>,
}

/// How good the returned solution is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolveStatus {
    /// Proven optimal (within the gap tolerance).
    Optimal,
    /// Feasible but a limit stopped the proof of optimality.
    Feasible,
}

/// Work actually executed by one worker of the parallel pool.
///
/// Unlike everything else the solver reports, this is **not** part of the
/// deterministic trajectory: which worker claims which job — and whether a
/// job is skipped against the atomically published incumbent or solved and
/// then discarded at merge — depends on thread timing. The loads exist so
/// `repro --stats` can show how the pool spent its time; never compare
/// them across runs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorkerLoad {
    /// Worker index within the pool (0 = the coordinator in sequential
    /// runs).
    pub worker: usize,
    /// Node LPs this worker solved (including ones later discarded as
    /// fathomed at merge).
    pub jobs: u64,
    /// Jobs skipped against the published incumbent bound without solving.
    pub skipped: u64,
    /// Simplex iterations executed by this worker.
    pub lp_iterations: u64,
    /// Dual-simplex iterations executed by this worker during warm node
    /// re-solves (disjoint from [`lp_iterations`](Self::lp_iterations)).
    pub dual_iterations: u64,
    /// Simplex pivots executed by this worker.
    pub pivots: u64,
    /// Bound flips executed by this worker.
    pub bound_flips: u64,
    /// Basis refactorizations executed by this worker.
    pub refactorizations: u64,
    /// Wall-clock time spent claiming and processing jobs.
    pub busy: Duration,
}

impl WorkerLoad {
    /// Accumulates another load report for the same worker (later rounds
    /// of the same solve: durations add).
    fn accumulate(&mut self, other: &WorkerLoad) {
        self.jobs += other.jobs;
        self.skipped += other.skipped;
        self.lp_iterations += other.lp_iterations;
        self.dual_iterations += other.dual_iterations;
        self.pivots += other.pivots;
        self.bound_flips += other.bound_flips;
        self.refactorizations += other.refactorizations;
        self.busy += other.busy;
    }
}

/// Search statistics of one solve.
///
/// Finer-grained data — per-phase wall clock, node outcome breakdown, the
/// incumbent timeline — flows through the [`letdma_core::Instrument`]
/// observer attached to the [`Solver`] session. All fields except
/// [`elapsed`](Self::elapsed) and [`workers`](Self::workers) are part of
/// the deterministic trajectory: they count *consumed* work only, so they
/// are identical at any thread count.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveStats {
    /// Branch-and-bound nodes processed.
    pub nodes: u64,
    /// Total primal simplex iterations across all consumed LP solves.
    pub lp_iterations: u64,
    /// Total dual-simplex iterations across all consumed warm node
    /// re-solves (zero when [`SolveOptions::warm_basis`] is off).
    pub dual_iterations: u64,
    /// Simplex basis changes (pivots) across all consumed LP solves.
    pub pivots: u64,
    /// Nonbasic bound-to-bound flips across all consumed LP solves.
    pub bound_flips: u64,
    /// Basis refactorizations across all consumed LP solves.
    pub refactorizations: u64,
    /// Wall-clock time spent.
    pub elapsed: Duration,
    /// Best proven bound on the optimum (in the model's objective sense);
    /// `None` when the search tree was exhausted before any bound was left.
    pub best_bound: Option<f64>,
    /// Per-worker executed-work breakdown (timing-dependent; empty only
    /// when the solve ended before any node was attempted).
    pub workers: Vec<WorkerLoad>,
}

impl SolveStats {
    /// Merges statistics of a solve that ran *concurrently* with this one
    /// (independent scenarios in a batch): executed-work counters sum,
    /// wall-clock takes the maximum (the runs overlapped), per-worker
    /// loads merge by worker index with `busy` also taking the maximum.
    /// `best_bound` is cleared — bounds of different models do not
    /// combine.
    pub fn merge_concurrent(&mut self, other: &SolveStats) {
        self.nodes += other.nodes;
        self.lp_iterations += other.lp_iterations;
        self.dual_iterations += other.dual_iterations;
        self.pivots += other.pivots;
        self.bound_flips += other.bound_flips;
        self.refactorizations += other.refactorizations;
        self.elapsed = self.elapsed.max(other.elapsed);
        self.best_bound = None;
        for load in &other.workers {
            match self.workers.iter_mut().find(|w| w.worker == load.worker) {
                Some(mine) => {
                    mine.jobs += load.jobs;
                    mine.skipped += load.skipped;
                    mine.lp_iterations += load.lp_iterations;
                    mine.dual_iterations += load.dual_iterations;
                    mine.pivots += load.pivots;
                    mine.bound_flips += load.bound_flips;
                    mine.refactorizations += load.refactorizations;
                    mine.busy = mine.busy.max(load.busy);
                }
                None => self.workers.push(load.clone()),
            }
        }
    }
}

/// A feasible (possibly optimal) MILP solution.
#[derive(Debug, Clone, PartialEq)]
pub struct MilpSolution {
    status: SolveStatus,
    values: Vec<f64>,
    objective: f64,
    stats: SolveStats,
}

impl MilpSolution {
    /// Whether the solution is proven optimal.
    #[must_use]
    pub fn status(&self) -> SolveStatus {
        self.status
    }

    /// The value of one variable.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to the solved model.
    #[must_use]
    pub fn value(&self, var: Var) -> f64 {
        self.values[var.index()]
    }

    /// All variable values, indexed by [`Var::index`].
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The objective value in the model's own sense.
    #[must_use]
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Search statistics.
    #[must_use]
    pub fn stats(&self) -> &SolveStats {
        &self.stats
    }
}

/// Why no solution could be returned.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SolveError {
    /// The constraints admit no solution.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
    /// A limit (time/nodes/iterations) was reached before any feasible
    /// solution was found; the best proven bound so far is attached when
    /// one exists.
    LimitReached {
        /// Best bound in the model's objective sense, if any LP solved.
        best_bound: Option<f64>,
    },
    /// A node evaluation panicked. The panic was caught — the process
    /// stays alive and the search stopped cleanly — but no feasible
    /// solution existed to return (a solve with an incumbent returns it
    /// as [`SolveStatus::Feasible`] instead of this error).
    WorkerPanic {
        /// Panics caught before the search stopped.
        caught: u64,
    },
    /// The solve's absolute [`SolveOptions::deadline`] had already passed
    /// when the solve started: rejected before any presolve or simplex
    /// work. A deadline that expires *mid-solve* never produces this error
    /// — the anytime behavior returns the best incumbent (or
    /// [`LimitReached`](Self::LimitReached) when none exists).
    DeadlineExpired,
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Infeasible => write!(f, "model is infeasible"),
            Self::Unbounded => write!(f, "model is unbounded"),
            Self::LimitReached { best_bound } => match best_bound {
                Some(b) => write!(f, "limit reached without a feasible solution (bound {b})"),
                None => write!(f, "limit reached without a feasible solution"),
            },
            Self::WorkerPanic { caught } => write!(
                f,
                "solver worker panicked ({caught} caught); no feasible solution to return"
            ),
            Self::DeadlineExpired => {
                write!(f, "deadline expired before the solve started")
            }
        }
    }
}

impl Error for SolveError {}

/// One open branch-and-bound node.
#[derive(Debug, Clone)]
struct Node {
    /// Bound overrides accumulated from the root: `(var, lower, upper)`.
    overrides: Vec<(Var, f64, f64)>,
    /// Parent LP bound in minimization form (the node can't do better).
    bound: f64,
    depth: u32,
    /// Creation sequence — the node id. On equal bounds the most recently
    /// created node is explored first (LIFO), turning tie regions into
    /// depth-first dives — crucial for finding incumbents in feasibility
    /// problems. The same id orders result merging (and hence incumbent
    /// tie-breaking) in deterministic mode.
    seq: u64,
    /// Min-form fathom threshold as of node *creation* (`+∞` when no
    /// incumbent existed yet). The warm re-solve fathoms against this
    /// stamped value, never the live incumbent: creation happens at a
    /// deterministic merge point and the incumbent only improves
    /// afterwards, so a warm fathom here is always confirmed by the cold
    /// path's merge-time test — at any thread count.
    cutoff: f64,
    /// The parent's optimal basis, shared by both children (absent at the
    /// root, when the parent LP hit a limit, or when
    /// [`SolveOptions::warm_basis`] is off).
    warm: Option<Arc<WarmBasis>>,
}

impl Node {
    /// Heap key for the bound: `total_cmp` gives every float — including a
    /// stray NaN from a numerically broken LP — a deterministic position
    /// (NaN sorts above every real bound, i.e. lowest priority) instead of
    /// the `partial_cmp(..).unwrap_or(Equal)` scramble. Adding `+0.0`
    /// collapses `-0.0` onto `0.0` first, preserving the old ordering for
    /// the signed-zero pair that `total_cmp` would otherwise split.
    fn bound_key(&self) -> f64 {
        self.bound + 0.0
    }
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: smaller bound = higher priority, then
        // most recently created first (LIFO dive).
        other
            .bound_key()
            .total_cmp(&self.bound_key())
            .then(self.seq.cmp(&other.seq))
    }
}

impl Model {
    /// Starts a solve session: configure it with the builder methods and
    /// finish with [`Solver::run`].
    ///
    /// The solver is *anytime*: with a time limit it returns the best
    /// feasible solution found so far (status [`SolveStatus::Feasible`])
    /// instead of failing, provided any incumbent exists.
    ///
    /// # Examples
    ///
    /// ```
    /// use milp::{Model, ObjectiveSense, SolveStatus};
    ///
    /// // max x + y  s.t.  2x + y ≤ 3, integral
    /// let mut m = Model::new();
    /// let x = m.add_integer("x", 0.0, 10.0);
    /// let y = m.add_integer("y", 0.0, 10.0);
    /// m.add_constraint("cap", (2.0 * x + y).le(3.0));
    /// m.set_objective(ObjectiveSense::Maximize, x + y);
    /// let s = m.solver().run()?;
    /// assert_eq!(s.status(), SolveStatus::Optimal);
    /// assert_eq!(s.objective().round(), 3.0); // x = 0, y = 3
    /// # Ok::<(), milp::SolveError>(())
    /// ```
    ///
    /// With an instrument and a worker pool:
    ///
    /// ```
    /// use letdma_core::SolverStats;
    /// use milp::{Model, ObjectiveSense};
    ///
    /// let mut m = Model::new();
    /// let x = m.add_integer("x", 0.0, 10.0);
    /// m.add_constraint("c", (2.0 * x).le(5.0));
    /// m.set_objective(ObjectiveSense::Maximize, 1.0 * x);
    /// let mut stats = SolverStats::new();
    /// let s = m.solver().threads(2).instrument(&mut stats).run()?;
    /// assert_eq!(s.objective().round(), 2.0);
    /// # Ok::<(), milp::SolveError>(())
    /// ```
    pub fn solver(&self) -> Solver<'_, 'static> {
        Solver {
            model: self,
            options: SolveOptions::default(),
            instrument: None,
            reduction: None,
            root_import: None,
            root_export: None,
        }
    }
}

/// Folds an absolute deadline into the wall-clock budget: `Err` when it
/// has already passed (checked before any presolve or simplex work),
/// otherwise a copy of the options whose `time_limit` is the smaller of
/// the explicit budget and the time remaining, or `None` when no deadline
/// is set (the common path clones nothing).
fn deadline_adjusted(options: &SolveOptions) -> Result<Option<SolveOptions>, SolveError> {
    let Some(deadline) = options.deadline else {
        return Ok(None);
    };
    let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
        return Err(SolveError::DeadlineExpired);
    };
    if remaining.is_zero() {
        return Err(SolveError::DeadlineExpired);
    }
    let mut adjusted = options.clone();
    adjusted.time_limit = Some(match options.time_limit {
        Some(budget) => budget.min(remaining),
        None => remaining,
    });
    Ok(Some(adjusted))
}

/// Shared entry point of every solve path (the session [`Solver::run`]):
/// enforces the admission deadline, resolves the presolve flag, reduces
/// the model (or reuses a cached [`presolve::Presolved`] reduction), runs
/// branch and bound on the reduction, and lifts the solution back to the
/// caller's variable space.
///
/// Presolve runs on the coordinator before any worker thread exists, so
/// the deterministic-trajectory guarantee is untouched: with presolve on,
/// every thread count walks the *reduced* model's trajectory; with it off,
/// the original's. A cached reduction replays the recorded presolve
/// tallies through the same counters and the same phase entry, so the
/// observable trajectory of a cache hit is byte-identical to a live
/// presolve of the same model (only the phase's wall-clock shrinks).
fn solve_entry(
    model: &Model,
    options: &SolveOptions,
    reduction: Option<&presolve::Presolved>,
    root: RootHooks,
    instrument: &mut dyn Instrument,
) -> Result<MilpSolution, SolveError> {
    let adjusted;
    let options = match deadline_adjusted(options)? {
        Some(o) => {
            adjusted = o;
            &adjusted
        }
        None => options,
    };
    let live;
    let red: &presolve::Presolved = match reduction {
        Some(red) => {
            assert_eq!(
                red.lift.original_vars(),
                model.num_vars(),
                "cached reduction does not match the model being solved"
            );
            timed_phase(instrument, "presolve", |_| ());
            red
        }
        None => {
            if !resolve_flag(PRESOLVE_ENV, options.presolve, true) {
                return BranchAndBound::new(model, options, root, instrument).run();
            }
            live = match timed_phase(instrument, "presolve", |_| {
                presolve::presolve(model, options.integrality_tol)
            }) {
                Ok(red) => red,
                Err(_proof) => return Err(SolveError::Infeasible),
            };
            &live
        }
    };
    instrument.count(Counter::PresolveRowsDropped, red.stats.rows_dropped);
    instrument.count(Counter::PresolveColsFixed, red.stats.cols_fixed);
    instrument.count(Counter::CoeffsTightened, red.stats.coeffs_tightened);
    if options.measure_root_gap && !red.is_noop() && !model.objective().is_empty() {
        if let Some(bps) = root_gap_bps(model, &red.model, options) {
            instrument.count(Counter::RootGapBps, bps);
        }
    }

    // Everything fixed (or an originally empty model): no search needed.
    if red.model.num_vars() == 0 {
        let values = red.lift.lift_values(&[]);
        if !model.is_feasible(&values, options.integrality_tol.max(1e-9)) {
            return Err(SolveError::Infeasible);
        }
        let objective = model.objective().evaluate(&values);
        return Ok(MilpSolution {
            status: SolveStatus::Optimal,
            values,
            objective,
            stats: SolveStats {
                nodes: 0,
                lp_iterations: 0,
                dual_iterations: 0,
                pivots: 0,
                bound_flips: 0,
                refactorizations: 0,
                elapsed: Duration::ZERO,
                best_bound: Some(objective),
                workers: Vec::new(),
            },
        });
    }

    let mut reduced_options = options.clone();
    reduced_options.warm_start = options
        .warm_start
        .as_ref()
        .and_then(|w| red.lift.project_values(w, options.integrality_tol));
    let sol = BranchAndBound::new(&red.model, &reduced_options, root, instrument).run()?;
    let values = red.lift.lift_values(&sol.values);
    // Re-evaluate on the original objective: bit-equal to the reduced
    // objective up to the substituted constant, and exact in the caller's
    // terms.
    let objective = model.objective().evaluate(&values);
    Ok(MilpSolution {
        status: sol.status,
        values,
        objective,
        stats: sol.stats,
    })
}

/// Solves the root LPs of the original and reduced models and returns the
/// presolve improvement in basis points of the larger root magnitude
/// (minimization form, clamped at zero). `None` when either root LP fails
/// to reach optimality within the solve's own deadline.
fn root_gap_bps(original: &Model, reduced: &Model, options: &SolveOptions) -> Option<u64> {
    let scale = match original.objective_sense() {
        ObjectiveSense::Minimize => 1.0,
        ObjectiveSense::Maximize => -1.0,
    };
    let deadline = options.time_limit.map(|t| Instant::now() + t);
    let config = LpConfig::resolve(options);
    let root = |m: &Model| -> Option<f64> {
        let mut lp = config.solver(m);
        lp.deadline = deadline;
        match lp.solve() {
            LpOutcome::Optimal { objective, .. } => Some(scale * objective),
            _ => None,
        }
    };
    let z_orig = root(original)?;
    let z_red = root(reduced)?;
    let denom = z_orig.abs().max(z_red.abs()).max(1e-9);
    let bps = (1e4 * (z_red - z_orig) / denom).round();
    Some(if bps > 0.0 { bps as u64 } else { 0 })
}

/// A configured solve session, created by [`Model::solver`].
///
/// The session replaces the former `solve`/`solve_with` pair: options,
/// instrumentation and the worker pool all chain onto one entry point.
#[must_use = "a solver session does nothing until `.run()` is called"]
pub struct Solver<'m, 'i> {
    model: &'m Model,
    options: SolveOptions,
    instrument: Option<&'i mut dyn Instrument>,
    reduction: Option<Arc<presolve::Presolved>>,
    root_import: Option<Arc<WarmBasis>>,
    root_export: Option<Arc<RootBasisSlot>>,
}

impl fmt::Debug for Solver<'_, '_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Solver")
            .field("options", &self.options)
            .field("instrumented", &self.instrument.is_some())
            .field("cached_reduction", &self.reduction.is_some())
            .field("root_import", &self.root_import.is_some())
            .field("root_export", &self.root_export.is_some())
            .finish_non_exhaustive()
    }
}

impl<'m, 'i> Solver<'m, 'i> {
    /// Replaces the whole option block.
    pub fn options(mut self, options: SolveOptions) -> Self {
        self.options = options;
        self
    }

    /// Sets the wall-clock budget.
    pub fn time_limit(mut self, limit: Duration) -> Self {
        self.options.time_limit = Some(limit);
        self
    }

    /// Sets the node budget.
    pub fn node_limit(mut self, limit: u64) -> Self {
        self.options.node_limit = Some(limit);
        self
    }

    /// Seeds the search with a known-feasible assignment.
    pub fn warm_start(mut self, assignment: Vec<f64>) -> Self {
        self.options.warm_start = Some(assignment);
        self
    }

    /// Enables or disables warm (dual-simplex) node re-solves from the
    /// parent basis (see [`SolveOptions::warm_basis`]; default on).
    pub fn warm_basis(mut self, warm_basis: bool) -> Self {
        self.options.warm_basis = warm_basis;
        self
    }

    /// Enables stderr progress lines.
    pub fn log(mut self, log: bool) -> Self {
        self.options.log = log;
        self
    }

    /// Requests an explicit worker-thread count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.options.threads = Some(threads.max(1));
        self
    }

    /// Selects deterministic or arrival-ordered result merging.
    pub fn deterministic(mut self, deterministic: bool) -> Self {
        self.options.deterministic = deterministic;
        self
    }

    /// Forces presolve on or off, overriding the `LETDMA_PRESOLVE`
    /// environment variable (see [`SolveOptions::presolve`]; unset
    /// defaults to on).
    pub fn presolve(mut self, presolve: bool) -> Self {
        self.options.presolve = Some(presolve);
        self
    }

    /// Enables or disables the presolve root-gap measurement (see
    /// [`SolveOptions::measure_root_gap`]; default off).
    pub fn measure_root_gap(mut self, measure: bool) -> Self {
        self.options.measure_root_gap = measure;
        self
    }

    /// Sets an absolute wall-clock deadline (see
    /// [`SolveOptions::deadline`]): an already-expired deadline fails with
    /// [`SolveError::DeadlineExpired`] before any solver work; otherwise
    /// the remaining time caps the wall-clock budget.
    pub fn deadline(mut self, deadline: Instant) -> Self {
        self.options.deadline = Some(deadline);
        self
    }

    /// Reuses a cached presolve reduction of **this same model** instead
    /// of running the presolve pass (the serve layer's formulation cache
    /// keys reductions by a structural hash of the model). The recorded
    /// presolve tallies are replayed through the instrument, so a cache
    /// hit's observable trajectory is byte-identical to a live presolve.
    ///
    /// The solve panics if the reduction's variable space does not match
    /// the model — a reduction is only valid for the model it was computed
    /// from.
    pub fn reduction(mut self, reduction: Arc<presolve::Presolved>) -> Self {
        self.reduction = Some(reduction);
        self
    }

    /// Attempts a cross-scenario **primal warm start of the root LP** from
    /// a sibling scenario's exported basis (see [`RootBasisSlot`]): the
    /// donor basis is installed on the (presolved) root, and — when it is
    /// primal feasible on this model's data — phase 2 runs directly from
    /// it, skipping phase 1 entirely. An install that fails for any reason
    /// (shape mismatch, infeasibility, numerics) falls back to the cold
    /// primal root, so the returned *solution* is identical either way;
    /// the *pivot path* (and hence the trajectory) differs, which is why
    /// the reuse layers expose an off switch that restores byte-identical
    /// cold trajectories.
    ///
    /// The snapshot must come from a solve of a model with the same
    /// (presolved) shape — in practice, from a [`Solver::root_export`] of
    /// a sibling prepared under the same presolve resolution.
    pub fn root_import(mut self, basis: Arc<WarmBasis>) -> Self {
        self.root_import = Some(basis);
        self
    }

    /// Publishes this solve's optimal root basis into `slot` right after
    /// the root LP solves (before any branching), making this solve the
    /// **donor** of a cross-scenario reuse group. When the root never
    /// reaches an exportable basis (infeasible, unbounded, timed out, or
    /// basis capture disabled) nothing is published — the slot's owner
    /// must seal it with [`RootBasisSlot::publish`]`(None)` after the
    /// solve returns so waiters cannot hang.
    pub fn root_export(mut self, slot: Arc<RootBasisSlot>) -> Self {
        self.root_export = Some(slot);
        self
    }

    /// Attaches a progress observer (counters, node events, the incumbent
    /// timeline).
    pub fn instrument<'j>(self, instrument: &'j mut dyn Instrument) -> Solver<'m, 'j> {
        Solver {
            model: self.model,
            options: self.options,
            instrument: Some(instrument),
            reduction: self.reduction,
            root_import: self.root_import,
            root_export: self.root_export,
        }
    }

    /// Runs the branch-and-bound search.
    ///
    /// # Errors
    ///
    /// * [`SolveError::Infeasible`] — no assignment satisfies the
    ///   constraints;
    /// * [`SolveError::Unbounded`] — the LP relaxation is unbounded;
    /// * [`SolveError::LimitReached`] — a limit was hit before any feasible
    ///   solution was found;
    /// * [`SolveError::DeadlineExpired`] — the admission deadline had
    ///   already passed when the solve started.
    pub fn run(self) -> Result<MilpSolution, SolveError> {
        let mut noop = NoopInstrument;
        let instrument: &mut dyn Instrument = match self.instrument {
            Some(i) => i,
            None => &mut noop,
        };
        solve_entry(
            self.model,
            &self.options,
            self.reduction.as_deref(),
            RootHooks {
                import: self.root_import,
                export: self.root_export,
            },
            instrument,
        )
    }
}

/// Outcome of one node LP.
enum PureLp {
    Solved {
        values: Vec<f64>,
        min_obj: f64,
        /// Optimal basis of this node, inherited by its children (captured
        /// only when warm re-solves are enabled).
        warm: Option<WarmBasis>,
    },
    /// The warm re-solve certified that the node cannot beat the incumbent
    /// that stamped its creation-time cutoff; no LP values exist.
    Fathomed,
    Infeasible,
    Unbounded,
    TimedOut,
    /// The node LP broke down numerically (or hit the iteration brake)
    /// even after the escalated-tolerance retry. **Not** an infeasibility
    /// certificate: the node must never be fathomed — the coordinator
    /// branches it conservatively so the subtree stays explored.
    Unresolved,
    /// The node evaluation panicked; the panic was caught by the
    /// worker-isolation guard. No LP information exists.
    Panicked,
}

/// Deterministic counters of one node LP, recorded worker-side and
/// absorbed by the coordinator only when the node is consumed.
#[derive(Default)]
struct LpShard {
    lp_solves: u64,
    iterations: u64,
    phase1_iterations: u64,
    pivots: u64,
    bound_flips: u64,
    refactorizations: u64,
    warm_attempts: u64,
    warm_fathoms: u64,
    warm_infeasible: u64,
    warm_fallbacks: u64,
    dual_iterations: u64,
    warm_iterations_saved: u64,
    tolerance_escalations: u64,
    numerical_recoveries: u64,
    /// LP solves whose phase-1 start installed at least one crash column
    /// (see [`crate::crash`]; zero unless the crash is enabled).
    crash_used: u64,
    /// Cross-scenario root warm starts: attempts to start the root LP from
    /// a donor scenario's optimal basis, how many settled the root without
    /// phase 1, and the donor's phase-1 iteration bill that each hit
    /// avoided (see [`Solver::root_import`]).
    cross_attempts: u64,
    cross_hits: u64,
    phase1_saved: u64,
    ftran_calls: u64,
    btran_calls: u64,
    pricing_candidates: u64,
    eta_nonzeros: u64,
    /// Fill-in ratio numerator/denominator (`Σ nnz(L+U)` / `Σ nnz(B)`
    /// over this node's refactorizations; zero for the dense inverse).
    lu_nonzeros: u64,
    basis_nonzeros: u64,
    /// Wall-clock breakdown of this node's simplex work (refactorization /
    /// `ftran`·`btran`·pivot solves / entering-variable pricing). Not part
    /// of the deterministic trajectory — reported as instrument phases,
    /// never compared across runs.
    time_factorize: Duration,
    time_solve: Duration,
    time_pricing: Duration,
}

impl LpShard {
    /// Accumulates one finished `SimplexSolver`'s basis/pricing work
    /// (shared by the warm, cold and retry paths of a node evaluation).
    fn absorb_lp(&mut self, lp: &SimplexSolver) {
        self.ftran_calls += lp.ftran_calls;
        self.btran_calls += lp.btran_calls;
        self.pricing_candidates += lp.pricing_candidates;
        self.eta_nonzeros += lp.eta_nonzeros();
        let (lu, basis) = lp.fill_nonzeros();
        self.lu_nonzeros += lu;
        self.basis_nonzeros += basis;
        self.time_factorize += lp.time_factorize;
        self.time_solve += lp.time_solve;
        self.time_pricing += lp.time_pricing;
    }
}

/// Solves the LP relaxation of one node. Free function (no `&self`) so
/// worker threads can run it without borrowing the search driver.
///
/// With `warm` present, a dual-simplex re-solve from the parent basis runs
/// first; it either settles the node without values
/// ([`PureLp::Fathomed`]/[`PureLp::Infeasible`]) or gives up, in which case
/// the cold primal path below runs exactly as it would have without the
/// attempt — so the returned [`PureLp`] differs from a cold-only solve at
/// most in *which* certificate settled a settled node, never in values,
/// objective or search consequences. `capture` additionally snapshots the
/// optimal basis of a cold solve for this node's children.
/// Panic-isolating wrapper around [`solve_node_lp`]: a panic anywhere in
/// the node evaluation (injected by the fault plane or a genuine bug)
/// becomes [`PureLp::Panicked`] instead of unwinding across the worker
/// pool and aborting the process. `AssertUnwindSafe` is justified because
/// the closure owns its scratch state: the model is only read, and the
/// shard of a panicked node is discarded wholesale.
fn solve_node_lp_guarded(
    model: &Model,
    config: LpConfig,
    overrides: &[(Var, f64, f64)],
    deadline: Option<Instant>,
    scale: f64,
    capture: bool,
    warm: Option<(&WarmBasis, f64)>,
) -> (PureLp, LpShard) {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        solve_node_lp(model, config, overrides, deadline, scale, capture, warm)
    }))
    .unwrap_or_else(|_| (PureLp::Panicked, LpShard::default()))
}

fn solve_node_lp(
    model: &Model,
    config: LpConfig,
    overrides: &[(Var, f64, f64)],
    deadline: Option<Instant>,
    scale: f64,
    capture: bool,
    warm: Option<(&WarmBasis, f64)>,
) -> (PureLp, LpShard) {
    if fault::should_fire(FaultSite::WorkerPanic) {
        panic!("fault injection: worker panic while solving a node LP");
    }
    let mut shard = LpShard::default();
    // Apply overrides on a scratch copy of the model bounds.
    let mut scratch = model.clone();
    for &(v, l, u) in overrides {
        let def = scratch.var_def(v);
        let nl = def.lower().max(l);
        let nu = def.upper().min(u);
        if nl > nu {
            return (PureLp::Infeasible, shard);
        }
        scratch.set_bounds(v, nl, nu);
    }
    let mut warm_debug: Option<(Vec<f64>, Vec<usize>)> = None;
    if let Some((basis, cutoff)) = warm {
        shard.warm_attempts = 1;
        let mut lp = config.solver(&scratch);
        lp.deadline = deadline;
        let outcome = lp.warm_resolve(basis, cutoff);
        shard.dual_iterations = lp.dual_iterations;
        shard.pivots = lp.pivots();
        shard.bound_flips = lp.bound_flips;
        shard.refactorizations = lp.refactorizations();
        shard.absorb_lp(&lp);
        match outcome {
            WarmOutcome::Fathomed { .. } => {
                shard.warm_fathoms = 1;
                // The cold solve this certificate replaced would have cost
                // roughly what the parent's did.
                shard.warm_iterations_saved = basis.iterations().saturating_sub(lp.dual_iterations);
                return (PureLp::Fathomed, shard);
            }
            WarmOutcome::Infeasible { .. } => {
                shard.warm_infeasible = 1;
                shard.warm_iterations_saved = basis.iterations().saturating_sub(lp.dual_iterations);
                return (PureLp::Infeasible, shard);
            }
            WarmOutcome::GiveUp { .. } => {
                shard.warm_fallbacks = 1;
                if std::env::var_os("LETDMA_WARM_DEBUG").is_some() {
                    warm_debug = Some(lp.debug_point());
                }
            }
        }
    }
    let mut lp = config.solver(&scratch);
    lp.deadline = deadline;
    let mut outcome = lp.solve();
    if let Some((wx, wbasis)) = &warm_debug {
        if let LpOutcome::Optimal { values, .. } = &outcome {
            let exact = values
                .iter()
                .zip(wx.iter())
                .filter(|(a, b)| a.to_bits() == b.to_bits())
                .count();
            let maxdiff = values
                .iter()
                .zip(wx.iter())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            let (_, mut cb) = lp.debug_point();
            cb.sort_unstable();
            let mut wb = wbasis.clone();
            wb.sort_unstable();
            eprintln!(
                "WARMDBG n={} exact_bits={} maxdiff={:.3e} basis_eq={}",
                values.len(),
                exact,
                maxdiff,
                cb == wb
            );
        }
    }
    shard.lp_solves = 1;
    shard.iterations = lp.iterations;
    shard.phase1_iterations = lp.phase1_iterations;
    shard.pivots += lp.pivots();
    shard.bound_flips += lp.bound_flips;
    shard.refactorizations += lp.refactorizations();
    shard.crash_used += u64::from(lp.crash_columns > 0);
    shard.absorb_lp(&lp);
    if matches!(outcome, LpOutcome::Numerical) {
        // Numerical recovery: rebuild the solver from scratch (which *is*
        // the forced refactorization — a fresh exact basis, no drifted
        // inverse), escalate the minimum-pivot threshold and tighten the
        // refactorization cadence, then retry once. Escalating the pivot
        // tolerance is sound because it only *restricts* which pivots the
        // ratio tests accept; loosening the optimality tolerance instead
        // could overstate the node bound and wrongly fathom.
        shard.tolerance_escalations = 1;
        let mut retry = config.solver(&scratch);
        retry.deadline = deadline;
        // The escalated settings override the configured cadence: a node
        // that already broke down numerically needs the tight rebuild
        // schedule regardless of what the solve asked for.
        retry.min_pivot = 1e-7;
        retry.refactor_interval = 64;
        outcome = retry.solve();
        shard.lp_solves += 1;
        shard.iterations += retry.iterations;
        shard.phase1_iterations += retry.phase1_iterations;
        shard.pivots += retry.pivots();
        shard.bound_flips += retry.bound_flips;
        shard.refactorizations += retry.refactorizations();
        shard.crash_used += u64::from(retry.crash_columns > 0);
        shard.absorb_lp(&retry);
        if !matches!(outcome, LpOutcome::Numerical) {
            shard.numerical_recoveries = 1;
        }
        lp = retry;
    }
    let lp = match outcome {
        LpOutcome::Optimal { values, objective } => PureLp::Solved {
            values,
            min_obj: scale * objective,
            warm: capture.then(|| lp.snapshot()),
        },
        LpOutcome::Infeasible => PureLp::Infeasible,
        LpOutcome::Unbounded => PureLp::Unbounded,
        // Neither brake is an infeasibility certificate: fathoming here
        // would silently drop a subtree that may hold the optimum (the
        // pre-resilience code conflated both with `Infeasible`).
        LpOutcome::IterationLimit | LpOutcome::Numerical => PureLp::Unresolved,
        LpOutcome::TimedOut => PureLp::TimedOut,
    };
    (lp, shard)
}

/// A node result traveling from a worker to the coordinator.
enum JobOutcome {
    /// The worker skipped the LP against the published incumbent bound.
    /// Sound: the incumbent only improves, so the merge-time fathoming
    /// test is guaranteed to discard the node anyway.
    Skipped,
    /// The shard is boxed to keep the enum small on the channel (the
    /// skip variant is payload-free and outnumbers finishes under a hot
    /// incumbent).
    Finished(PureLp, Box<LpShard>),
}

/// What the coordinator decided while merging one job.
enum MergeControl {
    Continue,
    /// A budget expired (or the LP timed out): push the node back and end
    /// the search.
    PushBackAndStop,
}

/// What a whole round decided.
enum RoundControl {
    Continue,
    Stop,
}

/// Internal search driver (the per-round coordinator).
struct BranchAndBound<'a> {
    model: &'a Model,
    options: &'a SolveOptions,
    instrument: &'a mut dyn Instrument,
    /// Per-node LP configuration, resolved once for the whole solve.
    lp_config: LpConfig,
    /// ±1 factor converting the model objective into minimization form.
    scale: f64,
    start: Instant,
    threads: usize,
    batch_width: usize,
    nodes: u64,
    lp_iterations: u64,
    dual_iterations: u64,
    pivots: u64,
    bound_flips: u64,
    refactorizations: u64,
    /// Fill-in ratio numerator/denominator summed over consumed shards
    /// (reported once per solve as `Counter::FillInRatio`).
    lu_nonzeros: u64,
    basis_nonzeros: u64,
    /// Simplex wall-clock breakdown summed over consumed shards (reported
    /// once per solve as the `simplex-*` instrument phases).
    time_factorize: Duration,
    time_solve: Duration,
    time_pricing: Duration,
    incumbent: Option<(Vec<f64>, f64)>, // (values, min-form objective)
    /// Best (lowest) LP bound among open nodes, min-form.
    open: BinaryHeap<Node>,
    root_bound: Option<f64>,
    node_seq: u64,
    worker_loads: Vec<WorkerLoad>,
    /// Panics caught by the worker-isolation guards during this solve.
    panics: u64,
    /// Cross-scenario root warm start: a donor scenario's optimal root
    /// basis to try before the cold root solve, and the slot (if any) to
    /// publish this solve's own root basis into. See
    /// [`Solver::root_import`] / [`Solver::root_export`].
    root_import: Option<Arc<WarmBasis>>,
    root_export: Option<Arc<RootBasisSlot>>,
}

impl<'a> BranchAndBound<'a> {
    fn new(
        model: &'a Model,
        options: &'a SolveOptions,
        root: RootHooks,
        instrument: &'a mut dyn Instrument,
    ) -> Self {
        let scale = match model.objective_sense() {
            ObjectiveSense::Minimize => 1.0,
            ObjectiveSense::Maximize => -1.0,
        };
        let lp_config = LpConfig::resolve(options);
        // Record what cadence actually ran, so the bench artifact carries
        // the knob next to the work counters it explains.
        instrument.count(Counter::RefactorCadence, lp_config.refactor_interval);
        Self {
            model,
            options,
            instrument,
            lp_config,
            scale,
            start: Instant::now(),
            threads: resolve_threads(options.threads),
            batch_width: options.speculation.max(1),
            nodes: 0,
            lp_iterations: 0,
            dual_iterations: 0,
            pivots: 0,
            bound_flips: 0,
            refactorizations: 0,
            lu_nonzeros: 0,
            basis_nonzeros: 0,
            time_factorize: Duration::ZERO,
            time_solve: Duration::ZERO,
            time_pricing: Duration::ZERO,
            incumbent: None,
            open: BinaryHeap::new(),
            root_bound: None,
            node_seq: 0,
            worker_loads: Vec::new(),
            panics: 0,
            root_import: root.import,
            root_export: root.export,
        }
    }

    /// Model-sense objective → minimization form.
    fn to_min(&self, model_obj: f64) -> f64 {
        self.scale * model_obj
    }

    /// Minimization form → model-sense objective.
    fn to_model(&self, min_obj: f64) -> f64 {
        self.scale * min_obj
    }

    fn deadline(&self) -> Option<Instant> {
        self.options.time_limit.map(|limit| self.start + limit)
    }

    fn out_of_budget(&self) -> bool {
        if fault::should_fire(FaultSite::DeadlineExhausted) {
            return true;
        }
        if let Some(limit) = self.options.time_limit {
            if self.start.elapsed() >= limit {
                return true;
            }
        }
        if let Some(limit) = self.options.node_limit {
            if self.nodes >= limit {
                return true;
            }
        }
        false
    }

    /// The merge-time fathoming test: can a node with this min-form bound
    /// still beat the incumbent?
    fn fathomed(&self, bound: f64) -> bool {
        match &self.incumbent {
            Some((_, inc)) => bound >= *inc - self.options.gap_abs,
            None => false,
        }
    }

    /// The worker-visible pruning threshold (min-form incumbent objective,
    /// `+∞` when none).
    fn incumbent_bits(&self) -> u64 {
        self.incumbent
            .as_ref()
            .map_or(f64::INFINITY, |(_, inc)| *inc)
            .to_bits()
    }

    fn worker_load_mut(&mut self, worker: usize) -> &mut WorkerLoad {
        while self.worker_loads.len() <= worker {
            let next = self.worker_loads.len();
            self.worker_loads.push(WorkerLoad {
                worker: next,
                ..WorkerLoad::default()
            });
        }
        &mut self.worker_loads[worker]
    }

    fn consider_incumbent(&mut self, values: Vec<f64>, model_obj: f64) {
        let min_obj = self.to_min(model_obj);
        let better = match &self.incumbent {
            Some((_, best)) => min_obj < *best - 1e-12,
            None => true,
        };
        if better {
            if self.options.log {
                eprintln!(
                    "[milp] incumbent {:.6} after {} nodes, {:?}",
                    model_obj,
                    self.nodes,
                    self.start.elapsed()
                );
            }
            self.instrument.count(Counter::Incumbents, 1);
            self.instrument.incumbent(IncumbentRecord {
                objective: model_obj,
                nodes: self.nodes,
                elapsed: self.start.elapsed(),
            });
            self.incumbent = Some((values, min_obj));
        }
    }

    /// Try rounding an LP point to the nearest integral assignment.
    fn try_rounding(&mut self, lp_values: &[f64]) {
        let mut rounded = lp_values.to_vec();
        for (j, def) in self.model.vars.iter().enumerate() {
            if def.is_integral() {
                rounded[j] = rounded[j].round().clamp(def.lower, def.upper);
            }
        }
        if self.model.is_feasible(&rounded, 1e-6) {
            let obj = self.model.objective().evaluate(&rounded);
            self.consider_incumbent(rounded, obj);
        }
    }

    /// Most fractional integral variable of an LP point.
    fn pick_branch_var(&self, lp_values: &[f64]) -> Option<(Var, f64)> {
        let tol = self.options.integrality_tol;
        let mut best: Option<(Var, f64, f64)> = None; // (var, value, frac dist)
        for (j, def) in self.model.vars.iter().enumerate() {
            if !def.is_integral() {
                continue;
            }
            let v = lp_values[j];
            let frac = (v - v.round()).abs();
            if frac > tol {
                let dist_to_half = (frac - 0.5).abs();
                match best {
                    Some((_, _, d)) if dist_to_half >= d => {}
                    _ => best = Some((Var(j as u32), v, dist_to_half)),
                }
            }
        }
        best.map(|(v, val, _)| (v, val))
    }

    /// Absorbs the deterministic counters of one *consumed* LP into the
    /// aggregate statistics and the instrument.
    fn absorb_shard(&mut self, shard: &LpShard) {
        self.lp_iterations += shard.iterations;
        self.dual_iterations += shard.dual_iterations;
        self.pivots += shard.pivots;
        self.bound_flips += shard.bound_flips;
        self.refactorizations += shard.refactorizations;
        if shard.lp_solves > 0 || shard.warm_attempts > 0 || shard.cross_attempts > 0 {
            self.instrument.count(Counter::LpSolves, shard.lp_solves);
            self.instrument
                .count(Counter::SimplexIterations, shard.iterations);
            self.instrument
                .count(Counter::Phase1Iterations, shard.phase1_iterations);
            self.instrument.count(Counter::Pivots, shard.pivots);
            self.instrument
                .count(Counter::BoundFlips, shard.bound_flips);
            self.instrument
                .count(Counter::Refactorizations, shard.refactorizations);
            self.instrument
                .count(Counter::FtranCalls, shard.ftran_calls);
            self.instrument
                .count(Counter::BtranCalls, shard.btran_calls);
            self.instrument
                .count(Counter::PricingCandidates, shard.pricing_candidates);
            self.instrument
                .count(Counter::EtaNonzeros, shard.eta_nonzeros);
        }
        self.lu_nonzeros += shard.lu_nonzeros;
        self.basis_nonzeros += shard.basis_nonzeros;
        self.time_factorize += shard.time_factorize;
        self.time_solve += shard.time_solve;
        self.time_pricing += shard.time_pricing;
        if shard.tolerance_escalations > 0 {
            self.instrument
                .count(Counter::ToleranceEscalations, shard.tolerance_escalations);
            self.instrument
                .count(Counter::NumericalRecoveries, shard.numerical_recoveries);
        }
        if shard.warm_attempts > 0 {
            self.instrument
                .count(Counter::WarmAttempts, shard.warm_attempts);
            self.instrument
                .count(Counter::WarmFathoms, shard.warm_fathoms);
            self.instrument
                .count(Counter::WarmInfeasible, shard.warm_infeasible);
            self.instrument
                .count(Counter::WarmFallbacks, shard.warm_fallbacks);
            self.instrument
                .count(Counter::DualIterations, shard.dual_iterations);
            self.instrument
                .count(Counter::WarmIterationsSaved, shard.warm_iterations_saved);
        }
        if shard.crash_used > 0 {
            self.instrument
                .count(Counter::CrashBasisUsed, shard.crash_used);
        }
        if shard.cross_attempts > 0 {
            self.instrument
                .count(Counter::CrossScenarioWarmStarts, shard.cross_hits);
            self.instrument
                .count(Counter::Phase1IterationsSaved, shard.phase1_saved);
        }
    }

    /// Solves one node LP inline on the coordinator, charging the work to
    /// worker 0 (the sequential path, the root node, and the defensive
    /// fallback for a worker skip that the monotonicity argument says
    /// cannot be consumed).
    fn solve_inline(
        &mut self,
        overrides: &[(Var, f64, f64)],
        warm: Option<(&WarmBasis, f64)>,
    ) -> (PureLp, LpShard) {
        let t0 = Instant::now();
        let (lp, shard) = solve_node_lp_guarded(
            self.model,
            self.lp_config,
            overrides,
            self.deadline(),
            self.scale,
            self.options.warm_basis,
            warm,
        );
        let load = self.worker_load_mut(0);
        load.jobs += 1;
        load.lp_iterations += shard.iterations;
        load.dual_iterations += shard.dual_iterations;
        load.pivots += shard.pivots;
        load.bound_flips += shard.bound_flips;
        load.refactorizations += shard.refactorizations;
        load.busy += t0.elapsed();
        (lp, shard)
    }

    /// Attempts the cross-scenario *primal* warm start at the root:
    /// install a donor scenario's optimal basis on this model, verify the
    /// implied point is primal feasible under this model's bounds, and run
    /// phase 2 only (see [`SimplexSolver::solve_from_basis`]).
    ///
    /// `None` means the basis did not transfer — shape mismatch, a bound
    /// change made the donor vertex infeasible, a singular
    /// refactorization, or a numerical breakdown in phase 2 — and the
    /// caller must run the cold root solve exactly as if no donor existed,
    /// so the search *consequences* of a failed import are identical to
    /// never attempting it. The attempt is recorded in the returned shard
    /// either way.
    fn solve_root_import(&mut self, basis: &WarmBasis) -> (Option<PureLp>, LpShard) {
        let t0 = Instant::now();
        let mut shard = LpShard {
            cross_attempts: 1,
            ..LpShard::default()
        };
        let mut lp = self.lp_config.solver(self.model);
        lp.deadline = self.deadline();
        let outcome = lp.solve_from_basis(basis);
        shard.lp_solves = u64::from(outcome.is_some());
        shard.iterations = lp.iterations;
        shard.phase1_iterations = lp.phase1_iterations;
        shard.pivots = lp.pivots();
        shard.bound_flips = lp.bound_flips;
        shard.refactorizations = lp.refactorizations();
        shard.absorb_lp(&lp);
        let settled = match outcome {
            Some(LpOutcome::Optimal { values, objective }) => {
                shard.cross_hits = 1;
                // What the hit avoided: the donor's phase-1 bill for the
                // same structure (phase 2 still ran, and is counted).
                shard.phase1_saved = basis.phase1_iterations();
                Some(PureLp::Solved {
                    values,
                    min_obj: self.scale * objective,
                    warm: self.options.warm_basis.then(|| lp.snapshot()),
                })
            }
            // A genuine phase-2 certificate or brake from a feasible
            // start: as trustworthy as the cold path's.
            Some(LpOutcome::Unbounded) => Some(PureLp::Unbounded),
            Some(LpOutcome::TimedOut) => Some(PureLp::TimedOut),
            // Install failure, iteration limit, numerical breakdown, or an
            // (unreachable from a feasible start) infeasibility claim:
            // distrust the import and fall back cold.
            _ => None,
        };
        let load = self.worker_load_mut(0);
        load.jobs += 1;
        load.lp_iterations += shard.iterations;
        load.pivots += shard.pivots;
        load.bound_flips += shard.bound_flips;
        load.refactorizations += shard.refactorizations;
        load.busy += t0.elapsed();
        (settled, shard)
    }

    fn run(mut self) -> Result<MilpSolution, SolveError> {
        // Seed with the warm start, if it is actually feasible.
        if let Some(warm) = &self.options.warm_start {
            if self.model.is_feasible(warm, 1e-6) {
                let obj = self.model.objective().evaluate(warm);
                self.consider_incumbent(warm.clone(), obj);
                // Constant objective: any feasible point is optimal, no
                // search needed (pure feasibility problems with a known
                // solution).
                if self.model.objective().is_empty() {
                    let (values, min_obj) = self.incumbent.take().expect("just set");
                    return Ok(MilpSolution {
                        status: SolveStatus::Optimal,
                        objective: self.scale * min_obj,
                        values,
                        stats: SolveStats {
                            nodes: 0,
                            lp_iterations: 0,
                            dual_iterations: 0,
                            pivots: 0,
                            bound_flips: 0,
                            refactorizations: 0,
                            elapsed: self.start.elapsed(),
                            best_bound: Some(self.scale * min_obj),
                            workers: Vec::new(),
                        },
                    });
                }
            }
        }

        // `exhausted` stays true only when the whole tree was explored (so
        // the incumbent is proven optimal); any budget break clears it.
        let mut exhausted = true;

        // Root node, inline on the coordinator.
        if self.out_of_budget() {
            exhausted = false;
        } else {
            self.nodes += 1;
            self.instrument.count(Counter::Nodes, 1);
            let (lp, shard) = match self.root_import.take() {
                Some(basis) => {
                    let (settled, import_shard) = self.solve_root_import(&basis);
                    match settled {
                        Some(lp) => (lp, import_shard),
                        None => {
                            // Count the failed attempt, then run the cold
                            // root exactly as a donor-less solve would.
                            self.absorb_shard(&import_shard);
                            self.solve_inline(&[], None)
                        }
                    }
                }
                None => self.solve_inline(&[], None),
            };
            self.absorb_shard(&shard);
            match lp {
                PureLp::Infeasible => {
                    self.instrument.node_event(NodeEvent::Infeasible);
                    return Err(SolveError::Infeasible);
                }
                PureLp::Unbounded => {
                    return Err(SolveError::Unbounded);
                }
                PureLp::TimedOut => {
                    self.instrument.node_event(NodeEvent::Abandoned);
                    exhausted = false;
                }
                PureLp::Unresolved => {
                    // The root LP failed numerically even after the retry:
                    // no bound exists, but the tree must still be explored.
                    // Branch conservatively from the root domain; if
                    // nothing is splittable the solve degrades to the
                    // warm-start incumbent or a typed limit error.
                    self.instrument.node_event(NodeEvent::Unresolved);
                    if !self.branch_conservatively(&[], f64::NEG_INFINITY, 0) {
                        exhausted = false;
                    }
                }
                PureLp::Panicked => {
                    self.panics += 1;
                    self.instrument.count(Counter::PanicsCaught, 1);
                    exhausted = false;
                }
                // Unreachable at the root (no warm basis was passed), but
                // harmless: a fathomed root leaves the tree empty.
                PureLp::Fathomed => {
                    self.instrument.node_event(NodeEvent::FathomedByBound);
                }
                PureLp::Solved {
                    values,
                    min_obj,
                    warm,
                } => {
                    // Publish the optimal root basis for sibling scenarios
                    // of the same structure. `None` (warm capture off)
                    // still seals the slot so beneficiaries fall back to
                    // cold solves instead of blocking.
                    if let Some(slot) = &self.root_export {
                        slot.publish(warm.as_ref().map(|w| Arc::new(w.clone())));
                    }
                    self.root_bound = Some(min_obj);
                    self.process_lp(values, min_obj, Vec::new(), 0, warm);
                }
            }
        }

        // Main loop: rounds of up to `batch_width` node LPs.
        loop {
            let mut batch = Vec::with_capacity(self.batch_width);
            while batch.len() < self.batch_width {
                match self.open.pop() {
                    None => break,
                    Some(node) => {
                        if self.fathomed(node.bound) {
                            self.instrument.node_event(NodeEvent::FathomedByBound);
                        } else {
                            batch.push(node);
                        }
                    }
                }
            }
            if batch.is_empty() {
                break;
            }
            if self.out_of_budget() {
                // Put the nodes back: their bounds still count for
                // reporting.
                for node in batch {
                    self.open.push(node);
                }
                exhausted = false;
                break;
            }
            match self.run_round(batch)? {
                RoundControl::Continue => {}
                RoundControl::Stop => {
                    exhausted = false;
                    break;
                }
            }
        }

        // Once-per-solve basis summary: the realized fill-in ratio and the
        // simplex wall-clock breakdown (mirrors the once-per-solve
        // RootGapBps pattern — a summed ratio would be meaningless).
        if self.basis_nonzeros > 0 {
            let permille = (1000.0 * self.lu_nonzeros as f64 / self.basis_nonzeros as f64).round();
            self.instrument.count(Counter::FillInRatio, permille as u64);
        }
        self.instrument
            .phase_finished("simplex-factorize", self.time_factorize);
        self.instrument
            .phase_finished("simplex-solve", self.time_solve);
        self.instrument
            .phase_finished("simplex-pricing", self.time_pricing);

        let proven_optimal = exhausted && self.open.is_empty();
        let best_bound_min = if proven_optimal {
            // The tree is exhausted: the incumbent *is* the bound.
            self.incumbent.as_ref().map(|(_, o)| *o)
        } else {
            self.open
                .iter()
                .map(|n| n.bound)
                .fold(None::<f64>, |acc, b| Some(acc.map_or(b, |a| a.min(b))))
                .or(self.root_bound)
        };

        let stats = SolveStats {
            nodes: self.nodes,
            lp_iterations: self.lp_iterations,
            dual_iterations: self.dual_iterations,
            pivots: self.pivots,
            bound_flips: self.bound_flips,
            refactorizations: self.refactorizations,
            elapsed: self.start.elapsed(),
            best_bound: best_bound_min.map(|b| self.to_model(b)),
            workers: self.worker_loads,
        };

        match self.incumbent {
            Some((values, min_obj)) => Ok(MilpSolution {
                status: if proven_optimal {
                    SolveStatus::Optimal
                } else {
                    SolveStatus::Feasible
                },
                objective: self.scale * min_obj,
                values,
                stats,
            }),
            None if proven_optimal => Err(SolveError::Infeasible),
            None if self.panics > 0 => Err(SolveError::WorkerPanic {
                caught: self.panics,
            }),
            None => Err(SolveError::LimitReached {
                best_bound: stats.best_bound,
            }),
        }
    }

    /// Branches an *unresolved* node — its LP failed numerically even
    /// after the escalated retry, so there are no LP values to pick a
    /// fractional variable from — by splitting the domain of the first
    /// integral variable that still holds at least two integer points.
    /// Both children inherit `bound` unchanged (a failed LP proves
    /// nothing, so the node must never be fathomed) and carry no warm
    /// basis. Returns `false` when nothing is splittable, in which case
    /// the caller must stop instead of re-queueing the same node forever.
    ///
    /// Termination: every split strictly shrinks one finite integer
    /// domain, so even a fault that breaks *every* LP only drives the
    /// search through the finite enumeration of integer boxes (budget
    /// checks still apply on top).
    fn branch_conservatively(
        &mut self,
        overrides: &[(Var, f64, f64)],
        bound: f64,
        depth: u32,
    ) -> bool {
        for (j, def) in self.model.vars.iter().enumerate() {
            if !def.is_integral() {
                continue;
            }
            let var = Var(j as u32);
            let mut lo = def.lower;
            let mut hi = def.upper;
            for &(v, l, u) in overrides {
                if v == var {
                    lo = lo.max(l);
                    hi = hi.min(u);
                }
            }
            let lo_int = lo.ceil();
            let hi_int = hi.floor();
            if !lo_int.is_finite() || lo_int >= hi_int {
                continue; // empty, single-point, or half-open downwards
            }
            let split = if hi_int.is_finite() {
                (lo_int + (hi_int - lo_int) / 2.0).floor()
            } else {
                lo_int // value split: [lo, lo] vs [lo+1, ∞)
            };
            let cutoff = match &self.incumbent {
                Some((_, inc)) => *inc - self.options.gap_abs,
                None => f64::INFINITY,
            };
            let mut down = overrides.to_vec();
            down.push((var, f64::NEG_INFINITY, split));
            let mut up = overrides.to_vec();
            up.push((var, split + 1.0, f64::INFINITY));
            for child in [down, up] {
                self.node_seq += 1;
                self.open.push(Node {
                    overrides: child,
                    bound,
                    depth: depth + 1,
                    seq: self.node_seq,
                    cutoff,
                    warm: None,
                });
            }
            return true;
        }
        false
    }

    /// Runs one round over `batch`, sequentially or on the worker pool.
    fn run_round(&mut self, batch: Vec<Node>) -> Result<RoundControl, SolveError> {
        if self.threads.min(batch.len()) <= 1 {
            self.run_round_inline(batch)
        } else {
            self.run_round_parallel(batch)
        }
    }

    /// The sequential path: solve and merge each job in node-id order.
    /// This *is* the reference trajectory the parallel path reproduces.
    fn run_round_inline(&mut self, batch: Vec<Node>) -> Result<RoundControl, SolveError> {
        let mut jobs = batch.into_iter();
        while let Some(node) = jobs.next() {
            match self.merge_job(&node, None)? {
                MergeControl::Continue => {}
                MergeControl::PushBackAndStop => {
                    self.open.push(node);
                    for rest in jobs {
                        self.open.push(rest);
                    }
                    return Ok(RoundControl::Stop);
                }
            }
        }
        Ok(RoundControl::Continue)
    }

    /// The parallel path: workers race through the batch (skipping jobs
    /// the published incumbent already fathoms), the coordinator merges in
    /// node-id order (deterministic mode) or arrival order.
    fn run_round_parallel(&mut self, batch: Vec<Node>) -> Result<RoundControl, SolveError> {
        let threads = self.threads.min(batch.len());
        // Shared refs copied out of `self` so worker closures borrow
        // nothing of the coordinator's mutable state.
        let model = self.model;
        let lp_config = self.lp_config;
        let gap_abs = self.options.gap_abs;
        let deadline = self.deadline();
        let scale = self.scale;
        let warm_basis = self.options.warm_basis;
        let deterministic = self.options.deterministic;
        let inc_bits = AtomicU64::new(self.incumbent_bits());
        let next_job = AtomicUsize::new(0);
        let jobs = &batch;

        let mut merged = vec![false; batch.len()];
        let mut control = RoundControl::Continue;
        let mut error: Option<SolveError> = None;
        let mut loads: Vec<WorkerLoad> = Vec::with_capacity(threads);
        let mut thread_panics = 0u64;

        std::thread::scope(|s| {
            let (tx, rx) = mpsc::channel::<(usize, JobOutcome)>();
            let mut handles = Vec::with_capacity(threads);
            for _ in 0..threads {
                let tx = tx.clone();
                let inc_bits = &inc_bits;
                let next_job = &next_job;
                handles.push(s.spawn(move || {
                    let mut load = WorkerLoad::default();
                    // Second line of defense behind the per-node guard in
                    // `solve_node_lp_guarded`: a panic anywhere else in the
                    // worker loop must not unwind into the thread scope
                    // (which would abort the whole process at join time).
                    let survived =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| loop {
                            let i = next_job.fetch_add(1, AtomicOrdering::Relaxed);
                            if i >= jobs.len() {
                                break;
                            }
                            let t0 = Instant::now();
                            let node = &jobs[i];
                            let threshold = f64::from_bits(inc_bits.load(AtomicOrdering::Relaxed));
                            let outcome = if node.bound >= threshold - gap_abs {
                                load.skipped += 1;
                                JobOutcome::Skipped
                            } else {
                                let warm = node.warm.as_deref().map(|basis| (basis, node.cutoff));
                                let (lp, shard) = solve_node_lp_guarded(
                                    model,
                                    lp_config,
                                    &node.overrides,
                                    deadline,
                                    scale,
                                    warm_basis,
                                    warm,
                                );
                                load.jobs += 1;
                                load.lp_iterations += shard.iterations;
                                load.dual_iterations += shard.dual_iterations;
                                load.pivots += shard.pivots;
                                load.bound_flips += shard.bound_flips;
                                load.refactorizations += shard.refactorizations;
                                JobOutcome::Finished(lp, Box::new(shard))
                            };
                            load.busy += t0.elapsed();
                            if tx.send((i, outcome)).is_err() {
                                break;
                            }
                        }))
                        .is_ok();
                    (load, survived)
                }));
            }
            drop(tx);

            let mut stopped = false;
            let mut merge_one = |this: &mut Self, i: usize, outcome: Option<JobOutcome>| {
                if stopped {
                    return;
                }
                match this.merge_job(&jobs[i], outcome) {
                    Ok(MergeControl::Continue) => {
                        merged[i] = true;
                        // Publish the (possibly improved) incumbent so
                        // workers prune in flight.
                        inc_bits.store(this.incumbent_bits(), AtomicOrdering::Relaxed);
                    }
                    Ok(MergeControl::PushBackAndStop) => {
                        stopped = true;
                        control = RoundControl::Stop;
                    }
                    Err(e) => {
                        stopped = true;
                        error = Some(e);
                    }
                }
                if stopped {
                    // Make the remaining jobs skip instantly: every bound
                    // compares ≥ −∞.
                    inc_bits.store(f64::NEG_INFINITY.to_bits(), AtomicOrdering::Relaxed);
                }
            };

            if deterministic {
                let mut pending: BTreeMap<usize, JobOutcome> = BTreeMap::new();
                let mut next_merge = 0usize;
                for (i, outcome) in rx {
                    pending.insert(i, outcome);
                    while let Some(outcome) = pending.remove(&next_merge) {
                        merge_one(self, next_merge, Some(outcome));
                        next_merge += 1;
                    }
                }
                // The channel is closed, so every worker has exited its
                // loop. A gap in the merge order is a job some worker
                // claimed but never delivered (its thread died mid-node);
                // completing the remainder inline — in node-id order —
                // keeps the trajectory identical to the no-failure run.
                while next_merge < jobs.len() {
                    let outcome = pending.remove(&next_merge);
                    merge_one(self, next_merge, outcome);
                    next_merge += 1;
                }
            } else {
                let mut delivered = vec![false; jobs.len()];
                for (i, outcome) in rx {
                    delivered[i] = true;
                    merge_one(self, i, Some(outcome));
                }
                for (i, done) in delivered.iter().enumerate() {
                    if !done {
                        merge_one(self, i, None);
                    }
                }
            }

            for handle in handles {
                // `join` only errs if the panic escaped both catch_unwind
                // guards (impossible today, but never worth an abort).
                match handle.join() {
                    Ok((load, survived)) => {
                        loads.push(load);
                        if !survived {
                            thread_panics += 1;
                        }
                    }
                    Err(_) => thread_panics += 1,
                }
            }
        });

        for (worker, load) in loads.iter().enumerate() {
            self.worker_load_mut(worker).accumulate(load);
        }
        if thread_panics > 0 {
            self.panics += thread_panics;
            self.instrument.count(Counter::PanicsCaught, thread_panics);
        }

        if let Some(e) = error {
            return Err(e);
        }
        if matches!(control, RoundControl::Stop) {
            // Unmerged nodes (including the one that tripped the budget)
            // stay open: their bounds still count for reporting.
            for (i, node) in batch.into_iter().enumerate() {
                if !merged[i] {
                    self.open.push(node);
                }
            }
        }
        Ok(control)
    }

    /// Consumes one job in merge order: re-check fathoming against the
    /// *current* incumbent, enforce budgets, then process the LP result.
    /// `outcome: None` (and, defensively, a worker-side skip) solves the
    /// LP inline.
    fn merge_job(
        &mut self,
        node: &Node,
        outcome: Option<JobOutcome>,
    ) -> Result<MergeControl, SolveError> {
        if self.fathomed(node.bound) {
            self.instrument.node_event(NodeEvent::FathomedByBound);
            return Ok(MergeControl::Continue);
        }
        if self.out_of_budget() {
            return Ok(MergeControl::PushBackAndStop);
        }
        let (lp, shard) = match outcome {
            Some(JobOutcome::Finished(lp, shard)) => (lp, *shard),
            // A worker skip can only be consumed if the incumbent that
            // justified it disappeared — impossible, since incumbents only
            // improve — but solving inline keeps even that path correct.
            Some(JobOutcome::Skipped) | None => {
                let warm = node.warm.clone();
                self.solve_inline(
                    &node.overrides,
                    warm.as_deref().map(|basis| (basis, node.cutoff)),
                )
            }
        };
        self.nodes += 1;
        self.instrument.count(Counter::Nodes, 1);
        self.absorb_shard(&shard);
        match lp {
            PureLp::Infeasible => {
                self.instrument.node_event(NodeEvent::Infeasible);
                Ok(MergeControl::Continue)
            }
            PureLp::Unbounded => {
                // With bounded integrals this cannot happen unless the
                // model itself is unbounded; be conservative.
                Err(SolveError::Unbounded)
            }
            PureLp::TimedOut => {
                self.instrument.node_event(NodeEvent::Abandoned);
                Ok(MergeControl::PushBackAndStop)
            }
            PureLp::Unresolved => {
                self.instrument.node_event(NodeEvent::Unresolved);
                if self.branch_conservatively(&node.overrides, node.bound, node.depth) {
                    Ok(MergeControl::Continue)
                } else {
                    // Every integral variable is fixed and the LP still
                    // won't solve: leave the node open and stop — anytime
                    // semantics return the incumbent (or a typed error),
                    // never a wrong fathom, never a spin.
                    Ok(MergeControl::PushBackAndStop)
                }
            }
            PureLp::Panicked => {
                self.panics += 1;
                self.instrument.count(Counter::PanicsCaught, 1);
                // A deterministic panic would recur on re-solve; stop the
                // search cleanly. `run` returns the incumbent when one
                // exists, `SolveError::WorkerPanic` otherwise, and the
                // optimizer's degradation ladder takes it from there.
                Ok(MergeControl::PushBackAndStop)
            }
            // The warm certificate replaces a cold solve the merge-time
            // test above (or `process_lp`'s bound check) was guaranteed to
            // discard anyway: same terminal node, no children either way.
            PureLp::Fathomed => {
                self.instrument.node_event(NodeEvent::FathomedByBound);
                Ok(MergeControl::Continue)
            }
            PureLp::Solved {
                values,
                min_obj,
                warm,
            } => {
                self.process_lp(values, min_obj, node.overrides.clone(), node.depth, warm);
                Ok(MergeControl::Continue)
            }
        }
    }

    /// Handles a solved LP: fathom by bound, accept integral solutions, or
    /// branch.
    fn process_lp(
        &mut self,
        values: Vec<f64>,
        min_obj: f64,
        overrides: Vec<(Var, f64, f64)>,
        depth: u32,
        warm: Option<WarmBasis>,
    ) {
        if self.fathomed(min_obj) {
            self.instrument.node_event(NodeEvent::FathomedByBound);
            return; // fathomed by bound
        }
        match self.pick_branch_var(&values) {
            None => {
                self.instrument.node_event(NodeEvent::Integral);
                // Integral: snap and record.
                let mut snapped = values;
                for (j, def) in self.model.vars.iter().enumerate() {
                    if def.is_integral() {
                        snapped[j] = snapped[j].round();
                    }
                }
                let obj = self.model.objective().evaluate(&snapped);
                if self.model.is_feasible(&snapped, 1e-5) {
                    self.consider_incumbent(snapped, obj);
                }
                // else: numerically marginal integral point; ignore (a
                // cleaner point will be found deeper in the tree).
            }
            Some((var, value)) => {
                self.instrument.node_event(NodeEvent::Branched);
                self.try_rounding(&values);
                // Stamp the children's warm-fathom cutoff *after* the
                // rounding heuristic: any incumbent it produced is part of
                // the deterministic merge-order state, and a tighter
                // cutoff means more warm fathoms.
                let cutoff = match &self.incumbent {
                    Some((_, inc)) => *inc - self.options.gap_abs,
                    None => f64::INFINITY,
                };
                // Without a finite cutoff the dual simplex could only
                // certify infeasibility, typically re-solving feasible
                // children to optimality first and then throwing that work
                // away — not worth attempting.
                let warm = if self.options.warm_basis && cutoff.is_finite() {
                    warm.map(Arc::new)
                } else {
                    None
                };
                let floor = value.floor();
                let mut down = overrides.clone();
                down.push((var, f64::NEG_INFINITY, floor));
                let mut up = overrides;
                up.push((var, floor + 1.0, f64::INFINITY));
                // The child on the LP solution's side of the split is pushed
                // second (higher seq) so the LIFO tie-break dives into it
                // first.
                let frac_up = value - floor >= 0.5;
                let (first, second) = if frac_up { (down, up) } else { (up, down) };
                self.node_seq += 1;
                self.open.push(Node {
                    overrides: first,
                    bound: min_obj,
                    depth: depth + 1,
                    seq: self.node_seq,
                    cutoff,
                    warm: warm.clone(),
                });
                self.node_seq += 1;
                self.open.push(Node {
                    overrides: second,
                    bound: min_obj,
                    depth: depth + 1,
                    seq: self.node_seq,
                    cutoff,
                    warm,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinExpr;

    fn solve(m: &Model) -> Result<MilpSolution, SolveError> {
        m.solver().run()
    }

    #[test]
    fn pure_lp_passthrough() {
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, 4.0);
        m.add_constraint("c", (2.0 * x).le(5.0));
        m.set_objective(ObjectiveSense::Maximize, LinExpr::from(x));
        let s = solve(&m).unwrap();
        assert_eq!(s.status(), SolveStatus::Optimal);
        assert!((s.objective() - 2.5).abs() < 1e-6);
        assert!((s.value(x) - 2.5).abs() < 1e-6);
    }

    #[test]
    fn knapsack_exact() {
        // Values/weights chosen so LP relaxation is fractional.
        let mut m = Model::new();
        let items = [(60.0, 10.0), (100.0, 20.0), (120.0, 30.0)];
        let vars: Vec<_> = items
            .iter()
            .enumerate()
            .map(|(i, _)| m.add_binary(format!("x{i}")))
            .collect();
        let weight = LinExpr::weighted_sum(vars.iter().copied().zip(items.iter().map(|i| i.1)));
        m.add_constraint("cap", weight.le(50.0));
        let value = LinExpr::weighted_sum(vars.iter().copied().zip(items.iter().map(|i| i.0)));
        m.set_objective(ObjectiveSense::Maximize, value);
        let s = solve(&m).unwrap();
        // Optimal: items 2 and 3 → 220.
        assert_eq!(s.status(), SolveStatus::Optimal);
        assert!((s.objective() - 220.0).abs() < 1e-6);
        assert!(s.value(vars[0]) < 0.5);
        assert!(s.value(vars[1]) > 0.5);
        assert!(s.value(vars[2]) > 0.5);
    }

    #[test]
    fn integer_rounding_is_not_assumed() {
        // LP optimum x = 2.5 but integral optimum is 2.
        let mut m = Model::new();
        let x = m.add_integer("x", 0.0, 10.0);
        m.add_constraint("c", (2.0 * x).le(5.0));
        m.set_objective(ObjectiveSense::Maximize, LinExpr::from(x));
        let s = solve(&m).unwrap();
        assert_eq!(s.objective().round(), 2.0);
        assert_eq!(s.status(), SolveStatus::Optimal);
    }

    #[test]
    fn infeasible_integrality() {
        // 0.4 ≤ x ≤ 0.6 has no integer point.
        let mut m = Model::new();
        let x = m.add_integer("x", 0.0, 1.0);
        m.add_constraint("lo", (10.0 * x).ge(4.0));
        m.add_constraint("hi", (10.0 * x).le(6.0));
        assert_eq!(solve(&m).unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn plain_infeasible() {
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, 1.0);
        m.add_constraint("c", LinExpr::from(x).ge(2.0));
        assert_eq!(solve(&m).unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn unbounded_reported() {
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        m.set_objective(ObjectiveSense::Maximize, LinExpr::from(x));
        assert_eq!(solve(&m).unwrap_err(), SolveError::Unbounded);
    }

    #[test]
    fn warm_start_becomes_incumbent() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.add_constraint("c", (x + y).le(1.0));
        m.set_objective(ObjectiveSense::Maximize, 2.0 * x + y);
        let s = m
            .solver()
            .warm_start(vec![0.0, 1.0]) // feasible, obj 1
            .node_limit(0) // forbid any search
            .run()
            .unwrap();
        // Node limit 0: the warm start is all we have.
        assert_eq!(s.status(), SolveStatus::Feasible);
        assert!((s.objective() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_warm_start_ignored() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        m.set_objective(ObjectiveSense::Maximize, LinExpr::from(x));
        let s = m
            .solver()
            .warm_start(vec![2.0]) // out of bounds
            .run()
            .unwrap();
        assert!((s.objective() - 1.0).abs() < 1e-9);
        assert_eq!(s.status(), SolveStatus::Optimal);
    }

    #[test]
    fn equality_milp() {
        // x + y = 7, x − y = 1 over integers → x=4, y=3.
        let mut m = Model::new();
        let x = m.add_integer("x", 0.0, 10.0);
        let y = m.add_integer("y", 0.0, 10.0);
        m.add_constraint("sum", (x + y).eq(7.0));
        m.add_constraint("diff", (x - y).eq(1.0));
        m.set_objective(ObjectiveSense::Minimize, LinExpr::from(x));
        let s = solve(&m).unwrap();
        assert!((s.value(x) - 4.0).abs() < 1e-6);
        assert!((s.value(y) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn stats_populated() {
        // Two vars keep the row alive through presolve (its max activity
        // exceeds the rhs), so the solve is guaranteed to reach the
        // simplex.
        let mut m = Model::new();
        let x = m.add_integer("x", 0.0, 10.0);
        let y = m.add_integer("y", 0.0, 10.0);
        m.add_constraint("c", (2.0 * x + 3.0 * y).le(11.0));
        m.set_objective(ObjectiveSense::Maximize, x + y);
        let s = solve(&m).unwrap();
        assert!(s.stats().nodes >= 1);
        assert!(s.stats().lp_iterations >= 1);
        // Work executed shows up in the per-worker loads (worker 0 — the
        // coordinator — in a sequential run).
        let executed: u64 = s.stats().workers.iter().map(|w| w.jobs).sum();
        assert!(executed >= s.stats().nodes);
    }

    #[test]
    fn feasibility_problem_no_objective() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.add_constraint("pick", (x + y).eq(1.0));
        let s = solve(&m).unwrap();
        assert_eq!(s.status(), SolveStatus::Optimal);
        let total = s.value(x) + s.value(y);
        assert!((total - 1.0).abs() < 1e-6);
    }

    fn assignment_model(n: usize) -> (Model, Vec<Var>) {
        let mut m = Model::new();
        let mut x = vec![];
        for i in 0..n {
            for j in 0..n {
                x.push(m.add_binary(format!("x{i}{j}")));
            }
        }
        for i in 0..n {
            let row = LinExpr::weighted_sum((0..n).map(|j| (x[i * n + j], 1.0)));
            m.add_constraint(format!("row{i}"), row.eq(1.0));
            let col = LinExpr::weighted_sum((0..n).map(|j| (x[j * n + i], 1.0)));
            m.add_constraint(format!("col{i}"), col.eq(1.0));
        }
        // cost(i,j) = 1 + |i−j| → identity assignment costs n, any
        // off-diagonal swap strictly more.
        let obj = LinExpr::weighted_sum((0..n * n).map(|k| {
            let (i, j) = (k / n, k % n);
            (x[k], 1.0 + (i as f64 - j as f64).abs())
        }));
        m.set_objective(ObjectiveSense::Minimize, obj);
        (m, x)
    }

    #[test]
    fn bigger_assignment_milp() {
        let n = 4;
        let (m, x) = assignment_model(n);
        let s = solve(&m).unwrap();
        assert!((s.objective() - 4.0).abs() < 1e-6);
        for i in 0..n {
            assert!(s.value(x[i * n + i]) > 0.5, "diagonal {i} not chosen");
        }
    }

    #[test]
    fn parallel_run_matches_sequential_bit_for_bit() {
        let (m, _) = assignment_model(4);
        let mut seq_stats = letdma_core::SolverStats::new();
        let seq = m
            .solver()
            .threads(1)
            .instrument(&mut seq_stats)
            .run()
            .unwrap();
        for threads in [2, 3, 8] {
            let mut par_stats = letdma_core::SolverStats::new();
            let par = m
                .solver()
                .threads(threads)
                .instrument(&mut par_stats)
                .run()
                .unwrap();
            assert_eq!(seq.values(), par.values(), "{threads} threads");
            assert_eq!(seq.objective().to_bits(), par.objective().to_bits());
            assert_eq!(seq.stats().nodes, par.stats().nodes);
            assert_eq!(seq.stats().lp_iterations, par.stats().lp_iterations);
            assert_eq!(seq_stats.counters(), par_stats.counters());
            let timeline = |s: &letdma_core::SolverStats| -> Vec<(u64, u64)> {
                s.incumbents()
                    .iter()
                    .map(|r| (r.nodes, r.objective.to_bits()))
                    .collect()
            };
            assert_eq!(timeline(&seq_stats), timeline(&par_stats));
        }
    }

    #[test]
    fn warm_resolves_match_cold_bit_for_bit() {
        // The warm dual-simplex path must not change a single bit of the
        // search outcome: values, objective, node count and the incumbent
        // timeline are all pinned against a warm-disabled run. Work
        // counters (iterations, pivots) are *expected* to differ — that is
        // the point of the warm path. A two-constraint knapsack with a
        // seeded incumbent branches enough to exercise warm fathoming (the
        // assignment polytope would be integral — no branching at all).
        let mut m = Model::new();
        let vals = [15.0, 10.0, 9.0, 5.0, 7.0, 12.0];
        let w1 = [1.0, 5.0, 3.0, 4.0, 2.0, 6.0];
        let w2 = [4.0, 2.0, 5.0, 1.0, 6.0, 3.0];
        let x: Vec<_> = (0..6).map(|i| m.add_binary(format!("x{i}"))).collect();
        m.add_constraint(
            "c1",
            LinExpr::weighted_sum(x.iter().copied().zip(w1)).le(10.0),
        );
        m.add_constraint(
            "c2",
            LinExpr::weighted_sum(x.iter().copied().zip(w2)).le(10.0),
        );
        m.set_objective(
            ObjectiveSense::Maximize,
            LinExpr::weighted_sum(x.iter().copied().zip(vals)),
        );
        let mut cold_stats = letdma_core::SolverStats::new();
        let cold = m
            .solver()
            .warm_start(vec![0.0; 6])
            .warm_basis(false)
            .instrument(&mut cold_stats)
            .run()
            .unwrap();
        let mut warm_stats = letdma_core::SolverStats::new();
        let warm = m
            .solver()
            .warm_start(vec![0.0; 6])
            .instrument(&mut warm_stats)
            .run()
            .unwrap();
        assert_eq!(cold.values(), warm.values());
        assert_eq!(cold.objective().to_bits(), warm.objective().to_bits());
        assert_eq!(cold.stats().nodes, warm.stats().nodes);
        assert_eq!(cold.status(), warm.status());
        assert_eq!(cold_stats.counter(Counter::WarmAttempts), 0);
        assert_eq!(cold.stats().dual_iterations, 0);
        let timeline = |s: &letdma_core::SolverStats| -> Vec<(u64, u64)> {
            s.incumbents()
                .iter()
                .map(|r| (r.nodes, r.objective.to_bits()))
                .collect()
        };
        assert_eq!(timeline(&cold_stats), timeline(&warm_stats));
        // The assignment model actually exercises the warm path.
        assert!(warm_stats.counter(Counter::WarmAttempts) > 0);
    }

    #[test]
    fn opportunistic_mode_still_finds_the_optimum() {
        let (m, _) = assignment_model(4);
        let s = m.solver().threads(4).deterministic(false).run().unwrap();
        assert_eq!(s.status(), SolveStatus::Optimal);
        assert!((s.objective() - 4.0).abs() < 1e-6);
    }

    #[test]
    fn options_chain() {
        let o = SolveOptions::new()
            .with_time_limit(Duration::from_secs(7))
            .with_node_limit(9)
            .with_gap_abs(1e-3)
            .with_integrality_tol(1e-5)
            .with_warm_start(vec![1.0])
            .with_log(false)
            .with_threads(0)
            .with_deterministic(false)
            .with_speculation(0)
            .with_warm_basis(false)
            .with_crash(true);
        assert_eq!(o.time_limit, Some(Duration::from_secs(7)));
        assert_eq!(o.node_limit, Some(9));
        assert_eq!(o.threads, Some(1), "threads clamp to ≥ 1");
        assert_eq!(o.speculation, 1, "speculation clamps to ≥ 1");
        assert!(!o.deterministic);
        assert!(!o.warm_basis);
        assert_eq!(o.crash, Some(true));
        assert!(SolveOptions::new().warm_basis, "warm re-solves default on");
        assert_eq!(SolveOptions::new().crash, None, "crash defers to the env");
    }

    /// A model whose `≥` rows feed phase 1 from a cold start but carry
    /// singleton structural columns the crash can settle instead: `x`
    /// appears only in `r1`, `z` only in `r2`.
    fn crashable_model() -> Model {
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, 10.0);
        let y = m.add_integer("y", 0.0, 10.0);
        let z = m.add_continuous("z", 0.0, 10.0);
        m.add_constraint("r1", (2.0 * x + y).ge(4.0));
        m.add_constraint("r2", (y + 3.0 * z).ge(6.0));
        m.set_objective(ObjectiveSense::Minimize, x + y + z);
        m
    }

    #[test]
    fn crash_changes_work_not_values() {
        let m = crashable_model();
        let mut cold_stats = letdma_core::SolverStats::new();
        let cold = m
            .solver()
            .presolve(false)
            .instrument(&mut cold_stats)
            .run()
            .unwrap();
        let mut crash_stats = letdma_core::SolverStats::new();
        let crash = m
            .solver()
            .options(SolveOptions::new().with_presolve(false).with_crash(true))
            .instrument(&mut crash_stats)
            .run()
            .unwrap();
        assert_eq!(cold.objective().to_bits(), crash.objective().to_bits());
        assert_eq!(cold.status(), crash.status());
        assert_eq!(
            cold_stats.counter(Counter::CrashBasisUsed),
            0,
            "crash defaults off"
        );
        assert!(
            crash_stats.counter(Counter::CrashBasisUsed) > 0,
            "the singleton columns must actually be crashed"
        );
        assert!(
            crash_stats.counter(Counter::Phase1Iterations)
                < cold_stats.counter(Counter::Phase1Iterations),
            "crash {} < cold {}",
            crash_stats.counter(Counter::Phase1Iterations),
            cold_stats.counter(Counter::Phase1Iterations)
        );
    }

    #[test]
    fn root_import_round_trip_skips_phase1() {
        // A donor solve exports its optimal root basis; resubmitting the
        // same structure imports it, settles the root without phase 1, and
        // reaches the identical optimum.
        let m = crashable_model();
        let slot = Arc::new(RootBasisSlot::new());
        let mut donor_stats = letdma_core::SolverStats::new();
        let donor = m
            .solver()
            .presolve(false)
            .root_export(Arc::clone(&slot))
            .instrument(&mut donor_stats)
            .run()
            .unwrap();
        assert!(
            donor_stats.counter(Counter::Phase1Iterations) > 0,
            "the donor must have paid a phase-1 bill worth saving"
        );
        let basis = slot
            .wait()
            .expect("donor solved, so the slot holds a basis");
        let mut imp_stats = letdma_core::SolverStats::new();
        let imported = m
            .solver()
            .presolve(false)
            .root_import(basis)
            .instrument(&mut imp_stats)
            .run()
            .unwrap();
        assert_eq!(donor.values(), imported.values());
        assert_eq!(donor.objective().to_bits(), imported.objective().to_bits());
        assert_eq!(imp_stats.counter(Counter::CrossScenarioWarmStarts), 1);
        assert!(imp_stats.counter(Counter::Phase1IterationsSaved) > 0);
        assert_eq!(
            imp_stats.counter(Counter::Phase1Iterations),
            0,
            "an imported root runs phase 2 only"
        );
    }

    #[test]
    fn root_import_shape_mismatch_falls_back_cold() {
        // Export from a 3-var model, import into a different model: the
        // basis cannot transfer, and the fallback must match a plain cold
        // solve bit for bit.
        let slot = Arc::new(RootBasisSlot::new());
        crashable_model()
            .solver()
            .presolve(false)
            .root_export(Arc::clone(&slot))
            .run()
            .unwrap();
        let basis = slot.wait().expect("donor solved");
        let (other, _) = assignment_model(3);
        let cold = other.solver().presolve(false).run().unwrap();
        let mut stats = letdma_core::SolverStats::new();
        let s = other
            .solver()
            .presolve(false)
            .root_import(basis)
            .instrument(&mut stats)
            .run()
            .unwrap();
        assert_eq!(cold.values(), s.values());
        assert_eq!(cold.objective().to_bits(), s.objective().to_bits());
        assert_eq!(cold.stats().nodes, s.stats().nodes);
        assert_eq!(
            stats.counter(Counter::CrossScenarioWarmStarts),
            0,
            "a rejected import is an attempt, not a hit"
        );
    }

    #[test]
    fn root_basis_slot_first_publish_wins() {
        let slot = RootBasisSlot::new();
        assert!(slot.get().is_none(), "unpublished reads as None");
        slot.publish(None);
        assert!(matches!(slot.get(), Some(None)), "sealed empty");
        // A later publish must not overwrite the seal.
        let m = crashable_model();
        let export = Arc::new(RootBasisSlot::new());
        m.solver()
            .presolve(false)
            .root_export(Arc::clone(&export))
            .run()
            .unwrap();
        let basis = export.wait().expect("donor solved");
        slot.publish(Some(Arc::clone(&basis)));
        assert!(matches!(slot.get(), Some(None)), "first publish wins");
        assert!(slot.wait().is_none(), "wait observes the sealed value");
    }

    #[test]
    fn merge_concurrent_sums_counts_maxes_wall_clock() {
        let mk = |nodes, pivots, ms, worker| SolveStats {
            nodes,
            lp_iterations: 10 * nodes,
            dual_iterations: 3 * nodes,
            pivots,
            bound_flips: 1,
            refactorizations: 2,
            elapsed: Duration::from_millis(ms),
            best_bound: Some(1.0),
            workers: vec![WorkerLoad {
                worker,
                jobs: nodes,
                busy: Duration::from_millis(ms),
                ..WorkerLoad::default()
            }],
        };
        let mut a = mk(3, 7, 40, 0);
        let b = mk(5, 11, 90, 1);
        a.merge_concurrent(&b);
        assert_eq!(a.nodes, 8);
        assert_eq!(a.dual_iterations, 24);
        assert_eq!(a.pivots, 18);
        assert_eq!(a.bound_flips, 2);
        assert_eq!(a.refactorizations, 4);
        assert_eq!(a.elapsed, Duration::from_millis(90), "wall clock is max");
        assert_eq!(a.best_bound, None, "bounds of different models drop");
        assert_eq!(a.workers.len(), 2);
        // Same worker id merges in place, busy takes the max.
        let c = mk(2, 1, 200, 0);
        a.merge_concurrent(&c);
        assert_eq!(a.workers.len(), 2);
        assert_eq!(a.workers[0].jobs, 5);
        assert_eq!(a.workers[0].busy, Duration::from_millis(200));
    }

    #[test]
    fn error_display() {
        assert_eq!(SolveError::Infeasible.to_string(), "model is infeasible");
        assert!(SolveError::LimitReached { best_bound: None }
            .to_string()
            .contains("limit reached"));
        assert!(SolveError::WorkerPanic { caught: 2 }
            .to_string()
            .contains("2 caught"));
    }

    #[test]
    fn node_ordering_survives_nan_bounds() {
        // A NaN bound (the residue of a numerically broken LP) must take a
        // deterministic place in the queue — after every real bound — not
        // scramble the heap like `partial_cmp(..).unwrap_or(Equal)` did.
        let mk = |bound: f64, seq: u64| Node {
            overrides: Vec::new(),
            bound,
            depth: 0,
            seq,
            cutoff: f64::INFINITY,
            warm: None,
        };
        let mut heap = BinaryHeap::new();
        heap.push(mk(f64::NAN, 0));
        heap.push(mk(1.0, 1));
        heap.push(mk(-1.0, 2));
        heap.push(mk(f64::NAN, 3));
        let order: Vec<u64> = std::iter::from_fn(|| heap.pop()).map(|n| n.seq).collect();
        assert_eq!(
            order,
            vec![2, 1, 3, 0],
            "best bound first, NaN last, NaN ties broken LIFO"
        );
        // The signed-zero pair stays equal under the normalized key, so
        // the total_cmp switch cannot reorder pre-existing trajectories.
        assert_eq!(mk(0.0, 7).cmp(&mk(-0.0, 7)), Ordering::Equal);
    }

    #[test]
    fn time_limit_returns_incumbent_not_error() {
        // Seeded case for SolveOptions::time_limit: with an expired
        // deadline the solver must return the warm-start incumbent as
        // Feasible — on both the cold-primal and warm-dual configurations
        // — and only without any incumbent degrade to a typed limit error.
        let mut m = Model::new();
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.add_constraint("cap", (x + y).le(1.0));
        m.set_objective(ObjectiveSense::Maximize, 2.0 * x + y);
        for warm_basis in [false, true] {
            let s = m
                .solver()
                .warm_start(vec![0.0, 1.0]) // feasible, objective 1
                .time_limit(Duration::ZERO)
                .warm_basis(warm_basis)
                .run()
                .unwrap();
            assert_eq!(s.status(), SolveStatus::Feasible, "warm_basis={warm_basis}");
            assert!((s.objective() - 1.0).abs() < 1e-9);
        }
        let err = m.solver().time_limit(Duration::ZERO).run().unwrap_err();
        assert!(matches!(err, SolveError::LimitReached { .. }), "{err}");
    }
}
