//! Property-based tests of the LET semantics invariants the paper relies on.
//!
//! Cases are drawn from the in-tree seeded harness ([`letdma_core::Cases`]);
//! a failing case prints the `LETDMA_CASE_SEED` needed to replay it.

use letdma_core::{Cases, Rng, Xoshiro256};
use letdma_model::let_semantics::{
    comm_instants, comms_at, comms_at_start, read_needed_at, write_needed_at,
};
use letdma_model::{System, SystemBuilder, TimeNs};

/// Periods drawn from a realistic automotive-ish menu (ms).
const PERIOD_MENU_MS: [u64; 13] = [1, 2, 3, 5, 7, 10, 15, 20, 33, 50, 66, 100, 200];

fn random_period(rng: &mut Xoshiro256) -> u64 {
    *rng.choose(&PERIOD_MENU_MS).expect("nonempty menu")
}

/// A random two-core system with 1–4 producer→consumer chains.
fn random_system(rng: &mut Xoshiro256) -> System {
    let pairs = rng.usize_range(1, 5);
    let mut b = SystemBuilder::new(2);
    let mut labels = Vec::new();
    for i in 0..pairs {
        let tp = random_period(rng);
        let tc = random_period(rng);
        let size = rng.u64_range(1, 4096);
        let p = b
            .task(format!("p{i}"))
            .period_ms(tp)
            .core_index(0)
            .add()
            .unwrap();
        let c = b
            .task(format!("c{i}"))
            .period_ms(tc)
            .core_index(1)
            .add()
            .unwrap();
        labels.push((format!("l{i}"), size, p, c));
    }
    for (name, size, p, c) in labels {
        b.label(name).size(size).writer(p).reader(c).add().unwrap();
    }
    b.build().unwrap()
}

/// 𝓒(t) ⊆ 𝓒(s₀) for every communication instant t (the containment the
/// MILP correctness hinges on).
#[test]
fn comms_at_t_subset_of_start() {
    Cases::new("comms_at_t_subset_of_start", 64).run(|rng| {
        let sys = random_system(rng);
        let start = comms_at_start(&sys);
        for t in comm_instants(&sys) {
            for c in comms_at(&sys, t) {
                assert!(start.contains(&c), "{c} at {t} missing from C(s0)");
            }
        }
    });
}

/// The set of needed instants repeats with period lcm(T_p, T_c).
#[test]
fn skip_rules_are_periodic() {
    Cases::new("skip_rules_are_periodic", 64).run(|rng| {
        let tp = random_period(rng);
        let tc = random_period(rng);
        let t_p = TimeNs::from_ms(tp);
        let t_c = TimeNs::from_ms(tc);
        let l = t_p.lcm(t_c);
        let mut t = TimeNs::ZERO;
        while t < l * 2 {
            assert_eq!(
                write_needed_at(t, t_p, t_c),
                write_needed_at(t + l, t_p, t_c),
                "write periodicity broken at {t}"
            );
            t += t_p;
        }
        let mut t = TimeNs::ZERO;
        while t < l * 2 {
            assert_eq!(
                read_needed_at(t, t_p, t_c),
                read_needed_at(t + l, t_p, t_c),
                "read periodicity broken at {t}"
            );
            t += t_c;
        }
    });
}

/// Every producer value that is consumed corresponds to exactly one needed
/// write, and the number of needed reads equals the number of distinct
/// versions the consumer observes in one lcm window.
#[test]
fn write_read_counts_match_version_counts() {
    Cases::new("write_read_counts_match_version_counts", 64).run(|rng| {
        let tp = random_period(rng);
        let tc = random_period(rng);
        let t_p = TimeNs::from_ms(tp);
        let t_c = TimeNs::from_ms(tc);
        let l = t_p.lcm(t_c);
        // Count needed writes in [0, l).
        let mut wcount = 0u64;
        let mut t = TimeNs::ZERO;
        while t < l {
            if write_needed_at(t, t_p, t_c) {
                wcount += 1;
            }
            t += t_p;
        }
        // Distinct versions observed by consumer reads in [0, l): version of
        // read at u·T_c is floor(u·T_c / T_p).
        let mut versions = std::collections::BTreeSet::new();
        let mut t = TimeNs::ZERO;
        while t < l {
            versions.insert(t.as_ns() / t_p.as_ns());
            t += t_c;
        }
        assert_eq!(
            wcount,
            versions.len() as u64,
            "needed writes must equal observed versions (T_p={tp}ms, T_c={tc}ms)"
        );
        // Count needed reads in [0, l): equals number of reads that observe
        // a version different from the previous read (+ the initial one).
        let mut rcount = 0u64;
        let mut expected = 0u64;
        let mut prev = None;
        let mut t = TimeNs::ZERO;
        while t < l {
            if read_needed_at(t, t_p, t_c) {
                rcount += 1;
            }
            let version = t.as_ns() / t_p.as_ns();
            if prev != Some(version) {
                expected += 1;
            }
            prev = Some(version);
            t += t_c;
        }
        assert_eq!(rcount, expected);
    });
}

/// Communication instants lie in [0, horizon) and start at zero when there
/// is at least one inter-core communication.
#[test]
fn instants_well_formed() {
    Cases::new("instants_well_formed", 64).run(|rng| {
        let sys = random_system(rng);
        let instants = comm_instants(&sys);
        let horizon = sys.comm_horizon();
        assert!(instants.windows(2).all(|w| w[0] < w[1]), "sorted strictly");
        assert!(instants.iter().all(|&t| t < horizon));
        if !comms_at_start(&sys).is_empty() {
            assert_eq!(instants.first().copied(), Some(TimeNs::ZERO));
        }
    });
}

/// Every instant in 𝓣* actually has at least one communication, and
/// instants not in 𝓣* (release instants of communicating tasks) have none.
#[test]
fn instants_exactly_cover_nonempty_comm_sets() {
    Cases::new("instants_exactly_cover_nonempty_comm_sets", 64).run(|rng| {
        let sys = random_system(rng);
        let instants = comm_instants(&sys);
        for &t in &instants {
            assert!(!comms_at(&sys, t).is_empty(), "empty C(t) at listed {t}");
        }
        // Check all task releases within the horizon that are NOT in 𝓣*.
        let horizon = sys.comm_horizon();
        let instant_set: std::collections::BTreeSet<_> = instants.iter().copied().collect();
        for task in sys.tasks() {
            let mut t = TimeNs::ZERO;
            while t < horizon {
                assert!(
                    instant_set.contains(&t) || comms_at(&sys, t).is_empty(),
                    "instant {t} has comms but is not in T*"
                );
                t += task.period();
            }
        }
    });
}
