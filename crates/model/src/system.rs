//! The validated system: platform + task set + labels + cost model.

use std::collections::BTreeSet;

use crate::error::ModelError;
use crate::ids::{CoreId, LabelId, MemoryId, TaskId};
use crate::label::{Label, LabelBuilder};
use crate::platform::{CostModel, Platform};
use crate::task::{Task, TaskBuilder};
use crate::time::TimeNs;

/// A complete, validated application model (§III of the paper): the platform
/// `𝓟`, the task set `Γ`, the labels, and the DMA timing parameters.
///
/// `System` is immutable except for the per-task data-acquisition deadlines
/// `γ_i`, which the sensitivity procedure of §VII updates between analysis
/// runs through [`System::set_acquisition_deadline`].
///
/// # Examples
///
/// ```
/// use letdma_model::{SystemBuilder, TimeNs};
///
/// let mut b = SystemBuilder::new(2);
/// let prod = b.task("producer").period_ms(5).core_index(0).add()?;
/// let cons = b.task("consumer").period_ms(10).core_index(1).add()?;
/// b.label("sensor").size(64).writer(prod).reader(cons).add()?;
/// let system = b.build()?;
///
/// assert_eq!(system.tasks().len(), 2);
/// assert_eq!(system.hyperperiod(), TimeNs::from_ms(10));
/// assert_eq!(system.inter_core_shared_labels().count(), 1);
/// # Ok::<(), letdma_model::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct System {
    platform: Platform,
    tasks: Vec<Task>,
    labels: Vec<Label>,
    costs: CostModel,
    /// Per-cluster DMA engines, indexed by [`Platform::cluster_of`]. Empty
    /// on single-engine platforms; when present, every entry is dominated
    /// by the system-level envelope `costs` (validated at build time).
    cluster_costs: Vec<CostModel>,
}

impl System {
    /// The hardware platform.
    #[must_use]
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// All tasks, indexed by [`TaskId::index`].
    #[must_use]
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// All labels, indexed by [`LabelId::index`].
    #[must_use]
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// The DMA timing parameters: the system-level **worst-case envelope**.
    ///
    /// The MILP formulation and the conformance checker always use this
    /// envelope; on multi-engine platforms every per-cluster engine is
    /// dominated by it, so guarantees proved here carry over per cluster.
    #[must_use]
    pub fn costs(&self) -> &CostModel {
        &self.costs
    }

    /// The per-cluster DMA engines (empty on single-engine platforms).
    #[must_use]
    pub fn cluster_costs(&self) -> &[CostModel] {
        &self.cluster_costs
    }

    /// The DMA engine serving `core`: its cluster's cost model when
    /// per-cluster engines were declared, the system envelope otherwise.
    /// Simulation uses this (the engine that actually moves the data);
    /// analysis keeps the envelope via [`System::costs`].
    ///
    /// # Panics
    ///
    /// Panics if `core` does not exist on this platform.
    #[must_use]
    pub fn costs_for(&self, core: CoreId) -> &CostModel {
        if self.cluster_costs.is_empty() {
            &self.costs
        } else {
            &self.cluster_costs[self.platform.cluster_of(core)]
        }
    }

    /// Looks up one task.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this system.
    #[must_use]
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.index()]
    }

    /// Looks up one label.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this system.
    #[must_use]
    pub fn label(&self, id: LabelId) -> &Label {
        &self.labels[id.index()]
    }

    /// Finds a task by name.
    #[must_use]
    pub fn task_by_name(&self, name: &str) -> Option<&Task> {
        self.tasks.iter().find(|t| t.name == name)
    }

    /// Finds a label by name.
    #[must_use]
    pub fn label_by_name(&self, name: &str) -> Option<&Label> {
        self.labels.iter().find(|l| l.name == name)
    }

    /// The subset `Γ_k` of tasks assigned to `core`.
    pub fn tasks_on(&self, core: CoreId) -> impl Iterator<Item = &Task> + '_ {
        self.tasks.iter().filter(move |t| t.core == core)
    }

    /// The local memory `M(τ_i)` accessed by `task`.
    ///
    /// # Panics
    ///
    /// Panics if `task` does not belong to this system.
    #[must_use]
    pub fn local_memory_of(&self, task: TaskId) -> MemoryId {
        MemoryId::local(self.task(task).core)
    }

    /// Sets (or clears) the data-acquisition deadline `γ_i` of `task`.
    ///
    /// # Panics
    ///
    /// Panics if `task` does not belong to this system.
    pub fn set_acquisition_deadline(&mut self, task: TaskId, gamma: Option<TimeNs>) {
        self.tasks[task.index()].gamma = gamma;
    }

    /// Returns `true` when `label` is *inter-core shared*: at least one
    /// reader runs on a different core than the writer. Only such labels
    /// take part in LET communications via the DMA.
    #[must_use]
    pub fn is_inter_core_shared(&self, label: LabelId) -> bool {
        let l = self.label(label);
        let writer_core = self.task(l.writer).core;
        l.readers.iter().any(|&r| self.task(r).core != writer_core)
    }

    /// Iterates over all inter-core shared labels.
    pub fn inter_core_shared_labels(&self) -> impl Iterator<Item = &Label> + '_ {
        self.labels
            .iter()
            .filter(|l| self.is_inter_core_shared(l.id))
    }

    /// The readers of `label` that run on a different core than its writer
    /// (the consumers that receive the data through LET communications).
    pub fn inter_core_readers(&self, label: LabelId) -> impl Iterator<Item = TaskId> + '_ {
        let l = self.label(label);
        let writer_core = self.task(l.writer).core;
        l.readers
            .iter()
            .copied()
            .filter(move |&r| self.task(r).core != writer_core)
    }

    /// The set `𝓛^S(τ_p, τ_c)` of inter-core shared labels written by `producer`
    /// and read by `consumer` (empty unless they run on different cores).
    pub fn shared_labels(
        &self,
        producer: TaskId,
        consumer: TaskId,
    ) -> impl Iterator<Item = &Label> + '_ {
        let cross = self.task(producer).core != self.task(consumer).core;
        self.labels
            .iter()
            .filter(move |l| cross && l.writer == producer && l.readers.contains(&consumer))
    }

    /// All distinct producer→consumer pairs `(τ_p, τ_c)` with
    /// `𝓛^S(τ_p, τ_c) ≠ ∅`, in deterministic order.
    #[must_use]
    pub fn communicating_pairs(&self) -> Vec<(TaskId, TaskId)> {
        let mut pairs = BTreeSet::new();
        for l in &self.labels {
            let writer_core = self.task(l.writer).core;
            for &r in &l.readers {
                if self.task(r).core != writer_core {
                    pairs.insert((l.writer, r));
                }
            }
        }
        pairs.into_iter().collect()
    }

    /// The tasks `τ_j ≠ τ_i` that share at least one inter-core label with
    /// `task` in either direction.
    #[must_use]
    pub fn communication_partners(&self, task: TaskId) -> Vec<TaskId> {
        let mut partners = BTreeSet::new();
        for (p, c) in self.communicating_pairs() {
            if p == task {
                partners.insert(c);
            } else if c == task {
                partners.insert(p);
            }
        }
        partners.into_iter().collect()
    }

    /// The hyperperiod `H` of the whole task set (LCM of all periods).
    #[must_use]
    pub fn hyperperiod(&self) -> TimeNs {
        self.tasks
            .iter()
            .map(|t| t.period)
            .fold(None, |acc: Option<TimeNs>, p| {
                Some(acc.map_or(p, |a| a.lcm(p)))
            })
            .expect("validated system has at least one task")
    }

    /// The communication hyperperiod `H*_i` of `task` (Eq. 3): the LCM of its
    /// own period and of the periods of all its communication partners.
    ///
    /// For a task with no inter-core communications this is simply `T_i`.
    ///
    /// # Panics
    ///
    /// Panics if `task` does not belong to this system.
    #[must_use]
    pub fn comm_hyperperiod(&self, task: TaskId) -> TimeNs {
        let mut h = self.task(task).period;
        for partner in self.communication_partners(task) {
            h = h.lcm(self.task(partner).period);
        }
        h
    }

    /// The LCM of all `H*_i` over communicating tasks: the horizon after
    /// which the set of required LET communications repeats. Returns the
    /// plain hyperperiod when no task communicates.
    #[must_use]
    pub fn comm_horizon(&self) -> TimeNs {
        let pairs = self.communicating_pairs();
        if pairs.is_empty() {
            return self.hyperperiod();
        }
        let mut h: Option<TimeNs> = None;
        for (p, c) in pairs {
            let l = self.task(p).period.lcm(self.task(c).period);
            h = Some(h.map_or(l, |a| a.lcm(l)));
        }
        h.expect("nonempty pairs")
    }

    /// Total utilization `Σ C_i / T_i` of the task set (for diagnostics).
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.tasks
            .iter()
            .map(|t| t.wcet.as_ns() as f64 / t.period.as_ns() as f64)
            .sum()
    }
}

/// Builder assembling a [`System`] (C-BUILDER).
///
/// See [`System`] for a complete example.
#[derive(Debug)]
pub struct SystemBuilder {
    platform: Platform,
    tasks: Vec<Task>,
    labels: Vec<Label>,
    costs: CostModel,
    cluster_costs: Vec<CostModel>,
    explicit_priorities: bool,
    any_task_added: bool,
}

impl SystemBuilder {
    /// Starts building a system on a platform with `core_count` cores and
    /// the paper's default cost model.
    ///
    /// # Panics
    ///
    /// Panics if `core_count == 0`.
    #[must_use]
    pub fn new(core_count: u16) -> Self {
        Self::on_platform(Platform::new(core_count))
    }

    /// Starts building a system on an explicit platform (e.g. one created
    /// with [`Platform::with_clusters`]) and the paper's default cost model.
    #[must_use]
    pub fn on_platform(platform: Platform) -> Self {
        Self {
            platform,
            tasks: Vec::new(),
            labels: Vec::new(),
            costs: CostModel::default(),
            cluster_costs: Vec::new(),
            explicit_priorities: false,
            any_task_added: false,
        }
    }

    /// Replaces the DMA cost model (defaults to
    /// [`CostModel::paper_section_vii`]).
    #[must_use]
    pub fn costs(mut self, costs: CostModel) -> Self {
        self.costs = costs;
        self
    }

    /// Sets the DMA cost model in place (for use after other `&mut` calls).
    pub fn set_costs(&mut self, costs: CostModel) -> &mut Self {
        self.costs = costs;
        self
    }

    /// Declares one DMA engine per platform cluster, indexed by
    /// [`Platform::cluster_of`]. [`SystemBuilder::build`] validates that
    /// the list matches the platform's cluster count and that the
    /// system-level envelope ([`SystemBuilder::set_costs`]) dominates every
    /// engine componentwise.
    pub fn set_cluster_costs(&mut self, engines: Vec<CostModel>) -> &mut Self {
        self.cluster_costs = engines;
        self
    }

    /// Starts declaring a task; finish with [`TaskBuilder::add`].
    pub fn task(&mut self, name: impl Into<String>) -> TaskBuilder<'_> {
        TaskBuilder {
            builder: self,
            name: name.into(),
            period: None,
            core: None,
            wcet: TimeNs::ZERO,
            priority: None,
            gamma: None,
        }
    }

    /// Starts declaring a label; finish with [`LabelBuilder::add`].
    pub fn label(&mut self, name: impl Into<String>) -> LabelBuilder<'_> {
        LabelBuilder {
            builder: self,
            name: name.into(),
            size: None,
            writer: None,
            readers: Vec::new(),
        }
    }

    pub(crate) fn push_task(
        &mut self,
        mut task: Task,
        explicit_priority: bool,
    ) -> Result<TaskId, ModelError> {
        if !self.platform.contains_core(task.core) {
            return Err(ModelError::UnknownCore(task.core));
        }
        if self.tasks.iter().any(|t| t.name == task.name) {
            return Err(ModelError::DuplicateName(task.name));
        }
        if explicit_priority {
            self.explicit_priorities = true;
        }
        let id = TaskId::new(u32::try_from(self.tasks.len()).expect("too many tasks"));
        task.id = id;
        self.tasks.push(task);
        self.any_task_added = true;
        Ok(id)
    }

    pub(crate) fn push_label(&mut self, mut label: Label) -> Result<LabelId, ModelError> {
        if self.labels.iter().any(|l| l.name == label.name) {
            return Err(ModelError::DuplicateName(label.name));
        }
        if label.writer.index() >= self.tasks.len() {
            return Err(ModelError::UnknownTask(label.writer));
        }
        let mut seen = BTreeSet::new();
        for &r in &label.readers {
            if r.index() >= self.tasks.len() {
                return Err(ModelError::UnknownTask(r));
            }
            if r == label.writer {
                return Err(ModelError::SelfCommunication {
                    task: r,
                    label: LabelId::new(u32::try_from(self.labels.len()).expect("too many labels")),
                });
            }
            if !seen.insert(r) {
                return Err(ModelError::DuplicateReader {
                    task: r,
                    label: LabelId::new(u32::try_from(self.labels.len()).expect("too many labels")),
                });
            }
        }
        let id = LabelId::new(u32::try_from(self.labels.len()).expect("too many labels"));
        label.id = id;
        self.labels.push(label);
        Ok(id)
    }

    /// Finalizes the system.
    ///
    /// When no task declared an explicit priority, rate-monotonic priorities
    /// are assigned (shorter period ⇒ higher priority; ties broken by
    /// declaration order).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptySystem`] if no task was declared, and
    /// [`ModelError::ClusterConfig`] if per-cluster engines were declared
    /// but their count does not match the platform's cluster count or the
    /// system-level envelope fails to dominate one of them.
    pub fn build(mut self) -> Result<System, ModelError> {
        if self.tasks.is_empty() {
            return Err(ModelError::EmptySystem);
        }
        if !self.cluster_costs.is_empty() {
            if self.cluster_costs.len() != self.platform.cluster_count() {
                return Err(ModelError::ClusterConfig(format!(
                    "{} engines declared for {} clusters",
                    self.cluster_costs.len(),
                    self.platform.cluster_count()
                )));
            }
            for (k, engine) in self.cluster_costs.iter().enumerate() {
                if !self.costs.dominates(engine) {
                    return Err(ModelError::ClusterConfig(format!(
                        "the system cost envelope does not dominate the engine of cluster {k}"
                    )));
                }
            }
        }
        if !self.explicit_priorities {
            let mut order: Vec<usize> = (0..self.tasks.len()).collect();
            order.sort_by_key(|&i| (self.tasks[i].period, i));
            for (prio, idx) in order.into_iter().enumerate() {
                self.tasks[idx].priority = u32::try_from(prio).expect("priority overflow");
            }
        }
        Ok(System {
            platform: self.platform,
            tasks: self.tasks,
            labels: self.labels,
            costs: self.costs,
            cluster_costs: self.cluster_costs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two cores; p (5 ms) on P0 writes to c (10 ms) on P1 and to s (5 ms)
    /// on P0 (same-core, not inter-core shared).
    fn sample() -> (System, TaskId, TaskId, TaskId, LabelId, LabelId) {
        let mut b = SystemBuilder::new(2);
        let p = b.task("p").period_ms(5).core_index(0).add().unwrap();
        let c = b.task("c").period_ms(10).core_index(1).add().unwrap();
        let s = b.task("s").period_ms(5).core_index(0).add().unwrap();
        let shared = b
            .label("shared")
            .size(128)
            .writer(p)
            .reader(c)
            .add()
            .unwrap();
        let local = b.label("local").size(16).writer(p).reader(s).add().unwrap();
        (b.build().unwrap(), p, c, s, shared, local)
    }

    #[test]
    fn empty_system_rejected() {
        assert_eq!(
            SystemBuilder::new(1).build().unwrap_err(),
            ModelError::EmptySystem
        );
    }

    #[test]
    fn shared_label_classification() {
        let (sys, p, c, s, shared, local) = sample();
        assert!(sys.is_inter_core_shared(shared));
        assert!(!sys.is_inter_core_shared(local));
        assert_eq!(sys.inter_core_shared_labels().count(), 1);
        assert_eq!(sys.inter_core_readers(shared).collect::<Vec<_>>(), vec![c]);
        assert_eq!(sys.shared_labels(p, c).count(), 1);
        assert_eq!(sys.shared_labels(p, s).count(), 0); // same core
        assert_eq!(sys.shared_labels(c, p).count(), 0); // wrong direction
    }

    #[test]
    fn communicating_pairs_and_partners() {
        let (sys, p, c, _s, _, _) = sample();
        assert_eq!(sys.communicating_pairs(), vec![(p, c)]);
        assert_eq!(sys.communication_partners(p), vec![c]);
        assert_eq!(sys.communication_partners(c), vec![p]);
        assert!(sys
            .communication_partners(sys.task_by_name("s").unwrap().id())
            .is_empty());
    }

    #[test]
    fn hyperperiods() {
        let (sys, p, c, s, _, _) = sample();
        assert_eq!(sys.hyperperiod(), TimeNs::from_ms(10));
        assert_eq!(sys.comm_hyperperiod(p), TimeNs::from_ms(10));
        assert_eq!(sys.comm_hyperperiod(c), TimeNs::from_ms(10));
        // s does not communicate inter-core: H*_s = T_s.
        assert_eq!(sys.comm_hyperperiod(s), TimeNs::from_ms(5));
        assert_eq!(sys.comm_horizon(), TimeNs::from_ms(10));
    }

    #[test]
    fn tasks_on_core_partition() {
        let (sys, ..) = sample();
        assert_eq!(sys.tasks_on(CoreId::new(0)).count(), 2);
        assert_eq!(sys.tasks_on(CoreId::new(1)).count(), 1);
        assert_eq!(
            sys.local_memory_of(sys.task_by_name("c").unwrap().id()),
            MemoryId::local(CoreId::new(1))
        );
    }

    #[test]
    fn acquisition_deadline_update() {
        let (mut sys, p, ..) = sample();
        assert_eq!(sys.task(p).acquisition_deadline(), None);
        sys.set_acquisition_deadline(p, Some(TimeNs::from_us(200)));
        assert_eq!(
            sys.task(p).acquisition_deadline(),
            Some(TimeNs::from_us(200))
        );
        sys.set_acquisition_deadline(p, None);
        assert_eq!(sys.task(p).acquisition_deadline(), None);
    }

    #[test]
    fn name_lookups() {
        let (sys, p, ..) = sample();
        assert_eq!(sys.task_by_name("p").unwrap().id(), p);
        assert!(sys.task_by_name("ghost").is_none());
        assert_eq!(sys.label_by_name("shared").unwrap().size(), 128);
        assert!(sys.label_by_name("ghost").is_none());
    }

    #[test]
    fn cluster_engines_validated_and_resolved_per_core() {
        use crate::platform::CopyCost;

        let platform = Platform::with_clusters(4, 2).unwrap();
        let envelope = CostModel::paper_section_vii();
        let fast = CostModel::new(
            TimeNs::from_ns(2_000),
            TimeNs::from_us(8),
            CopyCost::per_byte(3, 1).unwrap(),
        );
        let mut b = SystemBuilder::on_platform(platform.clone());
        b.set_costs(envelope);
        b.set_cluster_costs(vec![envelope, fast]);
        b.task("t").period_ms(10).core_index(0).add().unwrap();
        let sys = b.build().unwrap();
        assert_eq!(sys.cluster_costs().len(), 2);
        assert_eq!(sys.costs_for(CoreId::new(0)), &envelope);
        assert_eq!(sys.costs_for(CoreId::new(3)), &fast);

        // Wrong engine count is rejected.
        let mut b = SystemBuilder::on_platform(platform.clone());
        b.set_cluster_costs(vec![envelope]);
        b.task("t").period_ms(10).core_index(0).add().unwrap();
        assert!(matches!(
            b.build().unwrap_err(),
            ModelError::ClusterConfig(_)
        ));

        // An engine the envelope does not dominate is rejected.
        let slower = CostModel::new(
            TimeNs::from_ns(4_000),
            TimeNs::from_us(10),
            CopyCost::per_byte(5, 1).unwrap(),
        );
        let mut b = SystemBuilder::on_platform(platform);
        b.set_costs(envelope);
        b.set_cluster_costs(vec![envelope, slower]);
        b.task("t").period_ms(10).core_index(0).add().unwrap();
        assert!(matches!(
            b.build().unwrap_err(),
            ModelError::ClusterConfig(_)
        ));
    }

    #[test]
    fn single_engine_systems_resolve_to_envelope() {
        let (sys, ..) = sample();
        assert!(sys.cluster_costs().is_empty());
        assert_eq!(sys.costs_for(CoreId::new(0)), sys.costs());
        assert_eq!(sys.costs_for(CoreId::new(1)), sys.costs());
    }

    #[test]
    fn utilization_sums() {
        let mut b = SystemBuilder::new(1);
        b.task("a")
            .period_ms(10)
            .core_index(0)
            .wcet(TimeNs::from_ms(1))
            .add()
            .unwrap();
        b.task("b")
            .period_ms(10)
            .core_index(0)
            .wcet(TimeNs::from_ms(4))
            .add()
            .unwrap();
        let sys = b.build().unwrap();
        assert!((sys.utilization() - 0.5).abs() < 1e-12);
    }
}
