//! Labels: the memory slots tasks communicate through (§III-B).

use crate::ids::{LabelId, TaskId};

/// A label `ℓ_l`: a contiguous memory slot of `σ_l` bytes with a single
/// writer and any number of readers.
///
/// A label is *inter-core shared* when at least one reader runs on a
/// different core than the writer; such labels are mapped in the global
/// memory `M_G` with per-task copies in the local memories, and their
/// updates travel through LET communications. Labels whose readers all live
/// on the writer's core are exchanged through a core-local double buffer
/// instead (out of scope for the DMA protocol, but they still occupy space
/// in the local memory layout).
///
/// Construct labels through [`crate::SystemBuilder::label`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Label {
    pub(crate) id: LabelId,
    pub(crate) name: String,
    pub(crate) size: u64,
    pub(crate) writer: TaskId,
    pub(crate) readers: Vec<TaskId>,
}

impl Label {
    /// The identifier of this label within its system.
    #[must_use]
    pub fn id(&self) -> LabelId {
        self.id
    }

    /// Human-readable label name (unique within the system).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The size `σ_l` in bytes.
    #[must_use]
    pub fn size(&self) -> u64 {
        self.size
    }

    /// The unique producer task writing this label.
    #[must_use]
    pub fn writer(&self) -> TaskId {
        self.writer
    }

    /// All consumer tasks reading this label (possibly empty).
    #[must_use]
    pub fn readers(&self) -> &[TaskId] {
        &self.readers
    }
}

/// Builder for one label, returned by [`crate::SystemBuilder::label`].
#[derive(Debug)]
pub struct LabelBuilder<'a> {
    pub(crate) builder: &'a mut crate::SystemBuilder,
    pub(crate) name: String,
    pub(crate) size: Option<u64>,
    pub(crate) writer: Option<TaskId>,
    pub(crate) readers: Vec<TaskId>,
}

impl LabelBuilder<'_> {
    /// Sets the size `σ_l` in bytes.
    #[must_use]
    pub fn size(mut self, bytes: u64) -> Self {
        self.size = Some(bytes);
        self
    }

    /// Sets the unique writer task.
    #[must_use]
    pub fn writer(mut self, task: TaskId) -> Self {
        self.writer = Some(task);
        self
    }

    /// Adds reader tasks.
    #[must_use]
    pub fn readers<I: IntoIterator<Item = TaskId>>(mut self, tasks: I) -> Self {
        self.readers.extend(tasks);
        self
    }

    /// Adds a single reader task.
    #[must_use]
    pub fn reader(mut self, task: TaskId) -> Self {
        self.readers.push(task);
        self
    }

    /// Registers the label with the system builder and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`crate::ModelError`] when the size is missing/zero, the
    /// writer is missing or unknown, a reader is unknown or duplicated, the
    /// writer also appears as a reader, or the name is duplicated.
    pub fn add(self) -> Result<LabelId, crate::ModelError> {
        let size = self.size.ok_or_else(|| {
            crate::ModelError::InvalidParameter(format!("label `{}` has no size", self.name))
        })?;
        if size == 0 {
            return Err(crate::ModelError::InvalidParameter(format!(
                "label `{}` has zero size",
                self.name
            )));
        }
        let writer = self.writer.ok_or_else(|| {
            crate::ModelError::InvalidParameter(format!("label `{}` has no writer", self.name))
        })?;
        self.builder.push_label(Label {
            id: LabelId::new(0), // replaced by push_label
            name: self.name,
            size,
            writer,
            readers: self.readers,
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::{ModelError, SystemBuilder, TaskId};

    fn two_task_builder() -> (SystemBuilder, TaskId, TaskId) {
        let mut b = SystemBuilder::new(2);
        let p = b.task("p").period_ms(10).core_index(0).add().unwrap();
        let c = b.task("c").period_ms(20).core_index(1).add().unwrap();
        (b, p, c)
    }

    #[test]
    fn label_roundtrip() {
        let (mut b, p, c) = two_task_builder();
        let l = b.label("pose").size(32).writer(p).reader(c).add().unwrap();
        let sys = b.build().unwrap();
        let label = sys.label(l);
        assert_eq!(label.name(), "pose");
        assert_eq!(label.size(), 32);
        assert_eq!(label.writer(), p);
        assert_eq!(label.readers(), &[c]);
    }

    #[test]
    fn rejects_zero_size() {
        let (mut b, p, _) = two_task_builder();
        let err = b.label("x").size(0).writer(p).add().unwrap_err();
        assert!(matches!(err, ModelError::InvalidParameter(_)));
    }

    #[test]
    fn rejects_missing_writer() {
        let (mut b, _, _) = two_task_builder();
        let err = b.label("x").size(4).add().unwrap_err();
        assert!(matches!(err, ModelError::InvalidParameter(_)));
    }

    #[test]
    fn rejects_unknown_reader() {
        let (mut b, p, _) = two_task_builder();
        let ghost = TaskId::new(99);
        let err = b
            .label("x")
            .size(4)
            .writer(p)
            .reader(ghost)
            .add()
            .unwrap_err();
        assert_eq!(err, ModelError::UnknownTask(ghost));
    }

    #[test]
    fn rejects_writer_as_reader() {
        let (mut b, p, _) = two_task_builder();
        let err = b.label("x").size(4).writer(p).reader(p).add().unwrap_err();
        assert!(matches!(err, ModelError::SelfCommunication { .. }));
    }

    #[test]
    fn rejects_duplicate_reader() {
        let (mut b, p, c) = two_task_builder();
        let err = b
            .label("x")
            .size(4)
            .writer(p)
            .readers([c, c])
            .add()
            .unwrap_err();
        assert!(matches!(err, ModelError::DuplicateReader { .. }));
    }

    #[test]
    fn rejects_duplicate_label_name() {
        let (mut b, p, c) = two_task_builder();
        b.label("x").size(4).writer(p).reader(c).add().unwrap();
        let err = b.label("x").size(8).writer(p).reader(c).add().unwrap_err();
        assert_eq!(err, ModelError::DuplicateName("x".into()));
    }
}
