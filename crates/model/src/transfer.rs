//! DMA transfers, transfer schedules and memory layouts (§V-A, §V-B).

use std::collections::{BTreeMap, BTreeSet};

use crate::ids::{LabelId, MemoryId, TaskId};
use crate::let_semantics::{comm_instants, comms_at, CommKind, Communication};
use crate::system::System;
use crate::time::TimeNs;

/// One allocatable memory slot.
///
/// The allocation problem places *slots*, not labels: an inter-core shared
/// label occupies one slot in `M_G` plus one *copy* slot per communicating
/// task in that task's local memory; a label that never crosses cores
/// occupies a single private slot in its writer's local memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Slot {
    /// The shared label `ℓ_l` itself, resident in global memory.
    Global(LabelId),
    /// The local copy `ℓ_{l,τ}` of a shared label for one task, resident in
    /// `M(τ)`.
    Copy {
        /// The shared label being copied.
        label: LabelId,
        /// The task owning the copy (producer or consumer).
        task: TaskId,
    },
    /// A label that is not inter-core shared, resident in its writer's local
    /// memory. Private slots take part in allocation (they occupy positions)
    /// but never move through the DMA.
    Private(LabelId),
}

impl Slot {
    /// The label whose bytes this slot holds.
    #[must_use]
    pub fn label(self) -> LabelId {
        match self {
            Self::Global(l) | Self::Private(l) => l,
            Self::Copy { label, .. } => label,
        }
    }

    /// The size of this slot in bytes (the label's `σ_l`).
    #[must_use]
    pub fn size(self, system: &System) -> u64 {
        system.label(self.label()).size()
    }
}

impl std::fmt::Display for Slot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Global(l) => write!(f, "{l}"),
            Self::Copy { label, task } => write!(f, "{label}@{task}"),
            Self::Private(l) => write!(f, "{l}(priv)"),
        }
    }
}

/// The slot a communication touches in its *local* memory.
#[must_use]
pub fn local_slot(comm: Communication) -> Slot {
    Slot::Copy {
        label: comm.label,
        task: comm.task,
    }
}

/// The slot a communication touches in *global* memory.
#[must_use]
pub fn global_slot(comm: Communication) -> Slot {
    Slot::Global(comm.label)
}

/// A total order of slots for every memory: the output of the allocation
/// problem (the `PL`/`AD` variables of the MILP, §VI-A).
///
/// Slot addresses follow from the order by prefix sums of slot sizes, so the
/// layout is *packed*: slot `i+1` starts exactly where slot `i` ends.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MemoryLayout {
    orders: BTreeMap<MemoryId, Vec<Slot>>,
}

impl MemoryLayout {
    /// Creates an empty layout.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the complete slot order of one memory, replacing any previous
    /// order.
    pub fn set_order(&mut self, memory: MemoryId, slots: Vec<Slot>) {
        self.orders.insert(memory, slots);
    }

    /// The ordered slots of `memory` (empty if the memory has no slots).
    #[must_use]
    pub fn slots(&self, memory: MemoryId) -> &[Slot] {
        self.orders.get(&memory).map_or(&[], Vec::as_slice)
    }

    /// The position (0-based rank) of `slot` in `memory`, the MILP's
    /// `PL_{k,a}`.
    #[must_use]
    pub fn position(&self, memory: MemoryId, slot: Slot) -> Option<usize> {
        self.slots(memory).iter().position(|&s| s == slot)
    }

    /// The byte address of `slot` in `memory` (prefix sum of preceding slot
    /// sizes), the paper's `a_{l,k}`.
    #[must_use]
    pub fn address(&self, system: &System, memory: MemoryId, slot: Slot) -> Option<u64> {
        let pos = self.position(memory, slot)?;
        Some(
            self.slots(memory)[..pos]
                .iter()
                .map(|s| s.size(system))
                .sum(),
        )
    }

    /// Memories that have at least one slot, in deterministic order.
    pub fn memories(&self) -> impl Iterator<Item = MemoryId> + '_ {
        self.orders.keys().copied()
    }

    /// Renders the layout as a human-readable address map, one line per
    /// slot: `0x000000..0x000040  ℓ3@τ1` — handy in examples and debug
    /// sessions.
    ///
    /// # Examples
    ///
    /// ```
    /// use letdma_model::{Communication, MemoryId, MemoryLayout, SystemBuilder};
    /// use letdma_model::transfer::{global_slot, local_slot};
    ///
    /// let mut b = SystemBuilder::new(2);
    /// let p = b.task("p").period_ms(5).core_index(0).add()?;
    /// let c = b.task("c").period_ms(5).core_index(1).add()?;
    /// let l = b.label("l").size(64).writer(p).reader(c).add()?;
    /// let sys = b.build()?;
    /// let mut layout = MemoryLayout::new();
    /// layout.set_order(MemoryId::Global, vec![global_slot(Communication::write(p, l))]);
    /// let text = layout.render(&sys);
    /// assert!(text.contains("MG"));
    /// assert!(text.contains("0x000000..0x000040"));
    /// # Ok::<(), letdma_model::ModelError>(())
    /// ```
    #[must_use]
    pub fn render(&self, system: &System) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for memory in self.memories() {
            let slots = self.slots(memory);
            if slots.is_empty() {
                continue;
            }
            let _ = writeln!(out, "{memory}:");
            let mut addr = 0u64;
            for slot in slots {
                let size = slot.size(system);
                let _ = writeln!(out, "  0x{addr:06x}..0x{:06x}  {slot}", addr + size);
                addr += size;
            }
        }
        out
    }

    /// The slots each memory must contain for `system`.
    ///
    /// With `include_private`, labels that never cross cores are given
    /// private slots in their writer's local memory.
    #[must_use]
    pub fn required_slots(
        system: &System,
        include_private: bool,
    ) -> BTreeMap<MemoryId, BTreeSet<Slot>> {
        let mut req: BTreeMap<MemoryId, BTreeSet<Slot>> = BTreeMap::new();
        for label in system.labels() {
            if system.is_inter_core_shared(label.id()) {
                req.entry(MemoryId::Global)
                    .or_default()
                    .insert(Slot::Global(label.id()));
                let writer = label.writer();
                req.entry(system.local_memory_of(writer))
                    .or_default()
                    .insert(Slot::Copy {
                        label: label.id(),
                        task: writer,
                    });
                for reader in system.inter_core_readers(label.id()) {
                    req.entry(system.local_memory_of(reader))
                        .or_default()
                        .insert(Slot::Copy {
                            label: label.id(),
                            task: reader,
                        });
                }
            } else if include_private {
                req.entry(system.local_memory_of(label.writer()))
                    .or_default()
                    .insert(Slot::Private(label.id()));
            }
        }
        req
    }
}

/// One DMA transfer `d_g`: an ordered group of same-direction communications
/// whose slots are contiguous (in the same order) in both the source and the
/// destination memory.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DmaTransfer {
    kind: CommKind,
    local: MemoryId,
    comms: Vec<Communication>,
}

impl DmaTransfer {
    /// Creates a transfer from an ordered, nonempty list of communications.
    ///
    /// # Panics
    ///
    /// Panics if `comms` is empty, mixes kinds, or mixes local memories.
    #[must_use]
    pub fn new(system: &System, comms: Vec<Communication>) -> Self {
        assert!(!comms.is_empty(), "a DMA transfer moves at least one label");
        let kind = comms[0].kind;
        let local = comms[0].local_memory(system);
        for c in &comms {
            assert_eq!(c.kind, kind, "mixed directions in one DMA transfer");
            assert_eq!(
                c.local_memory(system),
                local,
                "mixed local memories in one DMA transfer"
            );
        }
        Self { kind, local, comms }
    }

    /// Write (local→global) or read (global→local).
    #[must_use]
    pub fn kind(&self) -> CommKind {
        self.kind
    }

    /// The local memory on the non-global side.
    #[must_use]
    pub fn local_memory(&self) -> MemoryId {
        self.local
    }

    /// Source memory of the copy.
    #[must_use]
    pub fn source_memory(&self) -> MemoryId {
        match self.kind {
            CommKind::Write => self.local,
            CommKind::Read => MemoryId::Global,
        }
    }

    /// Destination memory of the copy.
    #[must_use]
    pub fn destination_memory(&self) -> MemoryId {
        match self.kind {
            CommKind::Write => MemoryId::Global,
            CommKind::Read => self.local,
        }
    }

    /// The ordered communications grouped in this transfer.
    #[must_use]
    pub fn comms(&self) -> &[Communication] {
        &self.comms
    }

    /// Total bytes moved.
    #[must_use]
    pub fn bytes(&self, system: &System) -> u64 {
        self.comms.iter().map(|c| c.bytes(system)).sum()
    }

    /// Worst-case duration including programming and ISR overheads.
    #[must_use]
    pub fn duration(&self, system: &System) -> TimeNs {
        system.costs().transfer_duration(self.bytes(system))
    }

    /// Restricts this transfer to the communications required at instant `t`
    /// (the skip rules may drop some); `None` if nothing remains.
    ///
    /// The relative order of the surviving communications is preserved, and
    /// — when the schedule satisfies the contiguity constraint (Constraint 6
    /// / Theorem 1) — their slots remain contiguous.
    #[must_use]
    pub fn restricted_to(&self, needed: &[Communication]) -> Option<Self> {
        let comms: Vec<_> = self
            .comms
            .iter()
            .copied()
            .filter(|c| needed.binary_search(c).is_ok())
            .collect();
        if comms.is_empty() {
            None
        } else {
            Some(Self {
                kind: self.kind,
                local: self.local,
                comms,
            })
        }
    }
}

/// An ordered sequence of DMA transfers: the schedule of all LET
/// communications at the synchronous start `s_0` (index `g` = execution
/// order). Schedules for later instants `t ∈ 𝓣*` are derived by restriction
/// ([`TransferSchedule::transfers_at`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TransferSchedule {
    transfers: Vec<DmaTransfer>,
}

impl TransferSchedule {
    /// Creates a schedule from transfers in execution order.
    #[must_use]
    pub fn new(transfers: Vec<DmaTransfer>) -> Self {
        Self { transfers }
    }

    /// The transfers in execution order (`g = 0, 1, …`).
    #[must_use]
    pub fn transfers(&self) -> &[DmaTransfer] {
        &self.transfers
    }

    /// Number of DMA transfers at `s_0` (the paper's "# DMA Transfers").
    #[must_use]
    pub fn len(&self) -> usize {
        self.transfers.len()
    }

    /// `true` when the schedule has no transfers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.transfers.is_empty()
    }

    /// The group index `g` containing `comm` (the MILP's `CGI_z`).
    #[must_use]
    pub fn group_of(&self, comm: Communication) -> Option<usize> {
        self.transfers
            .iter()
            .position(|t| t.comms().contains(&comm))
    }

    /// The transfers actually issued at instant `t`: each s₀ group is
    /// restricted to the communications `𝓒(t)` requires; empty groups are
    /// skipped. Returns `(g, transfer)` pairs where `g` is the s₀ group
    /// index.
    #[must_use]
    pub fn transfers_at(&self, system: &System, t: TimeNs) -> Vec<(usize, DmaTransfer)> {
        let needed = comms_at(system, t);
        self.transfers
            .iter()
            .enumerate()
            .filter_map(|(g, tr)| tr.restricted_to(&needed).map(|r| (g, r)))
            .collect()
    }

    /// Total duration of all transfers issued at instant `t`.
    #[must_use]
    pub fn duration_at(&self, system: &System, t: TimeNs) -> TimeNs {
        self.transfers_at(system, t)
            .iter()
            .map(|(_, tr)| tr.duration(system))
            .sum()
    }

    /// For every task that has at least one LET communication at `t`, the
    /// offset after `t` at which it becomes ready (rules R1–R3): the
    /// completion time of the last transfer carrying one of its
    /// communications. Tasks without communications at `t` are not in the
    /// map (they are ready immediately).
    #[must_use]
    pub fn ready_offsets_at(&self, system: &System, t: TimeNs) -> BTreeMap<TaskId, TimeNs> {
        let issued = self.transfers_at(system, t);
        let mut finish = TimeNs::ZERO;
        let mut ready: BTreeMap<TaskId, TimeNs> = BTreeMap::new();
        for (_, tr) in &issued {
            finish += tr.duration(system);
            for c in tr.comms() {
                // Later transfers overwrite: the *last* one determines
                // readiness.
                ready.insert(c.task, finish);
            }
        }
        ready
    }

    /// The worst-case data-acquisition latency `λ_i` of every task: the
    /// maximum ready offset over all communication instants `t ∈ 𝓣*`.
    ///
    /// Tasks that never communicate get `λ_i = 0`.
    #[must_use]
    pub fn worst_case_latencies(&self, system: &System) -> BTreeMap<TaskId, TimeNs> {
        let mut worst: BTreeMap<TaskId, TimeNs> = system
            .tasks()
            .iter()
            .map(|task| (task.id(), TimeNs::ZERO))
            .collect();
        for t in comm_instants(system) {
            for (task, offset) in self.ready_offsets_at(system, t) {
                let entry = worst.entry(task).or_insert(TimeNs::ZERO);
                if offset > *entry {
                    *entry = offset;
                }
            }
        }
        worst
    }
}

impl FromIterator<DmaTransfer> for TransferSchedule {
    fn from_iter<I: IntoIterator<Item = DmaTransfer>>(iter: I) -> Self {
        Self::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CopyCost, CostModel, SystemBuilder};

    /// p1(P0, 5ms) → c1(P1, 5ms) via l1; p2(P0, 10ms) → c2(P1, 10ms) via l2.
    /// Costs: λ_O = 10 µs (all programming), 1 ns per byte.
    fn sample() -> (System, [Communication; 4]) {
        let mut b = SystemBuilder::new(2);
        b.set_costs(CostModel::new(
            TimeNs::from_us(10),
            TimeNs::ZERO,
            CopyCost::per_byte(1, 1).unwrap(),
        ));
        let p1 = b.task("p1").period_ms(5).core_index(0).add().unwrap();
        let c1 = b.task("c1").period_ms(5).core_index(1).add().unwrap();
        let p2 = b.task("p2").period_ms(10).core_index(0).add().unwrap();
        let c2 = b.task("c2").period_ms(10).core_index(1).add().unwrap();
        let l1 = b.label("l1").size(100).writer(p1).reader(c1).add().unwrap();
        let l2 = b.label("l2").size(200).writer(p2).reader(c2).add().unwrap();
        let sys = b.build().unwrap();
        let w1 = Communication::write(p1, l1);
        let w2 = Communication::write(p2, l2);
        let r1 = Communication::read(l1, c1);
        let r2 = Communication::read(l2, c2);
        (sys, [w1, w2, r1, r2])
    }

    #[test]
    fn transfer_accessors() {
        let (sys, [w1, w2, ..]) = sample();
        let tr = DmaTransfer::new(&sys, vec![w1, w2]);
        assert_eq!(tr.kind(), CommKind::Write);
        assert_eq!(tr.source_memory(), sys.local_memory_of(w1.task));
        assert_eq!(tr.destination_memory(), MemoryId::Global);
        assert_eq!(tr.bytes(&sys), 300);
        // λ_O = 10 µs, 300 bytes at 1 ns/B.
        assert_eq!(tr.duration(&sys), TimeNs::from_ns(10_000 + 300));
    }

    #[test]
    #[should_panic(expected = "mixed directions")]
    fn transfer_rejects_mixed_kinds() {
        let (sys, [w1, _, r1, _]) = sample();
        let _ = DmaTransfer::new(&sys, vec![w1, r1]);
    }

    #[test]
    #[should_panic(expected = "at least one label")]
    fn transfer_rejects_empty() {
        let (sys, _) = sample();
        let _ = DmaTransfer::new(&sys, vec![]);
    }

    #[test]
    fn schedule_group_lookup_and_latency() {
        let (sys, [w1, w2, r1, r2]) = sample();
        let schedule = TransferSchedule::new(vec![
            DmaTransfer::new(&sys, vec![w1, w2]),
            DmaTransfer::new(&sys, vec![r1]),
            DmaTransfer::new(&sys, vec![r2]),
        ]);
        assert_eq!(schedule.len(), 3);
        assert_eq!(schedule.group_of(w1), Some(0));
        assert_eq!(schedule.group_of(r2), Some(2));

        // At s0 all four comms run: durations 10300, 10100, 10200.
        let ready = schedule.ready_offsets_at(&sys, TimeNs::ZERO);
        let c1 = sys.task_by_name("c1").unwrap().id();
        let c2 = sys.task_by_name("c2").unwrap().id();
        let p1 = sys.task_by_name("p1").unwrap().id();
        assert_eq!(ready[&c1], TimeNs::from_ns(10_300 + 10_100));
        assert_eq!(ready[&c2], TimeNs::from_ns(10_300 + 10_100 + 10_200));
        // Producer p1 is ready when its write (group 0) completes.
        assert_eq!(ready[&p1], TimeNs::from_ns(10_300));
    }

    #[test]
    fn restriction_skips_empty_groups() {
        let (sys, [w1, w2, r1, r2]) = sample();
        let schedule = TransferSchedule::new(vec![
            DmaTransfer::new(&sys, vec![w1, w2]),
            DmaTransfer::new(&sys, vec![r1, r2]),
        ]);
        // At t = 5 ms only the 5 ms pair (p1 → c1) communicates.
        let t = TimeNs::from_ms(5);
        let issued = schedule.transfers_at(&sys, t);
        assert_eq!(issued.len(), 2);
        assert_eq!(issued[0].1.comms(), &[w1]);
        assert_eq!(issued[1].1.comms(), &[r1]);
        // Durations shrink accordingly: 10100 + 10100.
        assert_eq!(schedule.duration_at(&sys, t), TimeNs::from_ns(20_200));
    }

    #[test]
    fn worst_case_latency_over_hyperperiod() {
        let (sys, [w1, w2, r1, r2]) = sample();
        let schedule = TransferSchedule::new(vec![
            DmaTransfer::new(&sys, vec![w1, w2]),
            DmaTransfer::new(&sys, vec![r1, r2]),
        ]);
        let lat = schedule.worst_case_latencies(&sys);
        let c1 = sys.task_by_name("c1").unwrap().id();
        // Worst case for c1 is at s0 where both labels move:
        // group0 = 10300, group1 = 10300 → 20600.
        assert_eq!(lat[&c1], TimeNs::from_ns(20_600));
    }

    #[test]
    fn layout_positions_and_addresses() {
        let (sys, [w1, w2, ..]) = sample();
        let mut layout = MemoryLayout::new();
        let m0 = w1.local_memory(&sys);
        let s1 = local_slot(w1);
        let s2 = local_slot(w2);
        layout.set_order(m0, vec![s1, s2]);
        layout.set_order(MemoryId::Global, vec![global_slot(w1), global_slot(w2)]);
        assert_eq!(layout.position(m0, s2), Some(1));
        assert_eq!(layout.address(&sys, m0, s1), Some(0));
        assert_eq!(layout.address(&sys, m0, s2), Some(100));
        assert_eq!(
            layout.address(&sys, MemoryId::Global, global_slot(w2)),
            Some(100)
        );
        assert_eq!(layout.position(m0, global_slot(w1)), None);
    }

    #[test]
    fn required_slots_cover_copies_and_global() {
        let (sys, [w1, _, r1, _]) = sample();
        let req = MemoryLayout::required_slots(&sys, false);
        let global = &req[&MemoryId::Global];
        assert_eq!(global.len(), 2);
        let m0 = &req[&w1.local_memory(&sys)];
        assert!(m0.contains(&local_slot(w1)));
        let m1 = &req[&r1.local_memory(&sys)];
        assert!(m1.contains(&local_slot(r1)));
    }

    #[test]
    fn required_slots_include_private_when_requested() {
        let mut b = SystemBuilder::new(1);
        let t = b.task("t").period_ms(1).core_index(0).add().unwrap();
        b.label("priv").size(4).writer(t).add().unwrap();
        let sys = b.build().unwrap();
        assert!(MemoryLayout::required_slots(&sys, false).is_empty());
        let req = MemoryLayout::required_slots(&sys, true);
        assert_eq!(req.len(), 1);
        let slots = req.values().next().unwrap();
        assert_eq!(slots.len(), 1);
    }

    #[test]
    fn slot_display_and_size() {
        let (sys, [w1, ..]) = sample();
        let s = local_slot(w1);
        assert_eq!(s.size(&sys), 100);
        assert!(s.to_string().contains('@'));
        assert_eq!(global_slot(w1).label(), w1.label);
    }
}
