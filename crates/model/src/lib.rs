//! # letdma-model
//!
//! System model and Logical-Execution-Time (LET) semantics for DMA-driven
//! inter-core communication, reproducing the model of *Pazzaglia, Casini,
//! Biondi, Di Natale — "Optimal Memory Allocation and Scheduling for DMA
//! Data Transfers under the LET Paradigm" (DAC 2021)*.
//!
//! The crate provides:
//!
//! * the **platform model** (§III-A): identical cores with dual-ported local
//!   scratchpads, one global memory, one DMA engine with a three-parameter
//!   cost model (`o_DP`, `o_ISR`, `ω_c`) — [`Platform`], [`CostModel`];
//! * the **application model** (§III): periodic tasks under partitioned
//!   scheduling and single-writer labels — [`System`], [`SystemBuilder`];
//! * the **LET semantics** (§IV, §V-A): communication skip rules (Eqs. 1–2),
//!   communication hyperperiods (Eq. 3), Algorithm 1
//!   ([`let_semantics::let_group`]), the communication instants `𝓣*` and
//!   sets `𝓒(t)`;
//! * **DMA transfers and memory layouts** (§V): [`DmaTransfer`],
//!   [`TransferSchedule`], [`MemoryLayout`], with per-instant restriction and
//!   worst-case latency evaluation;
//! * an independent **conformance checker** ([`conformance::verify`]) for
//!   Properties 1–3, contiguity and acquisition deadlines.
//!
//! # Examples
//!
//! Build a two-core system with one inter-core communication and inspect its
//! LET communications:
//!
//! ```
//! use letdma_model::{let_semantics, SystemBuilder, TimeNs};
//!
//! let mut b = SystemBuilder::new(2);
//! let camera = b.task("camera").period_ms(33).core_index(0).add()?;
//! let fusion = b.task("fusion").period_ms(66).core_index(1).add()?;
//! b.label("frame").size(640 * 480).writer(camera).reader(fusion).add()?;
//! let system = b.build()?;
//!
//! // At the synchronous start everything communicates:
//! let comms = let_semantics::comms_at_start(&system);
//! assert_eq!(comms.len(), 2); // one write + one read
//!
//! // The camera is oversampled: its write at t = 33 ms is skipped because
//! // the fusion task only reads at 0 and 66 ms.
//! assert!(let_semantics::comms_at(&system, TimeNs::from_ms(33)).is_empty());
//! # Ok::<(), letdma_model::ModelError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod conformance;
mod error;
mod ids;
mod label;
pub mod let_semantics;
mod platform;
mod system;
mod task;
pub mod time;
pub mod transfer;

pub use error::ModelError;
pub use ids::{CoreId, LabelId, MemoryId, TaskId};
pub use label::{Label, LabelBuilder};
pub use let_semantics::{CommKind, Communication, LetGroup};
pub use platform::{CopyCost, CostModel, Platform};
pub use system::{System, SystemBuilder};
pub use task::{Task, TaskBuilder};
pub use time::TimeNs;
pub use transfer::{DmaTransfer, MemoryLayout, Slot, TransferSchedule};

#[cfg(test)]
mod tests {
    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<crate::System>();
        assert_send_sync::<crate::TransferSchedule>();
        assert_send_sync::<crate::MemoryLayout>();
        assert_send_sync::<crate::ModelError>();
    }
}
