//! Independent conformance checking of a (layout, schedule) pair against the
//! LET-DMA protocol requirements.
//!
//! The checker re-derives everything from first principles — Properties 1–3,
//! the contiguity requirement of DMA transfers at *every* communication
//! instant, completeness of the communication partition, layout consistency
//! and data-acquisition deadlines — without trusting the optimizer that
//! produced the solution. It is used both as a test oracle and as the final
//! validation stage of [`letdma-opt`](../letdma_opt/index.html).

use std::collections::BTreeSet;

use crate::ids::{LabelId, MemoryId, TaskId};
use crate::let_semantics::{comm_instants, comms_at_start, CommKind, Communication};
use crate::system::System;
use crate::time::TimeNs;
use crate::transfer::{global_slot, local_slot, MemoryLayout, TransferSchedule};

/// One violation of the protocol requirements found by [`verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[non_exhaustive]
pub enum Violation {
    /// A communication of `𝓒(s_0)` is not scheduled in any transfer.
    MissingCommunication(Communication),
    /// A communication appears in more than one transfer (Constraint 1).
    DuplicateCommunication(Communication),
    /// A scheduled communication is not part of `𝓒(s_0)`.
    ForeignCommunication(Communication),
    /// A memory's layout is missing a required slot or contains an alien or
    /// duplicated slot.
    MalformedLayout {
        /// The memory whose layout is malformed.
        memory: MemoryId,
        /// Human-readable description of the defect.
        detail: String,
    },
    /// The slots of a transfer are not contiguous (or not equally ordered)
    /// in one of its memories at instant `t` (Constraint 6 / Theorem 1).
    NotContiguous {
        /// Communication instant at which the restricted transfer breaks.
        t: TimeNs,
        /// Index of the offending s₀ transfer group.
        group: usize,
        /// The memory in which contiguity fails.
        memory: MemoryId,
    },
    /// A task's write is scheduled at or after one of its reads
    /// (Property 1 / Constraint 7).
    WriteAfterOwnRead {
        /// The task whose communications are mis-ordered.
        task: TaskId,
        /// Group index of the offending write.
        write_group: usize,
        /// Group index of the offending read.
        read_group: usize,
    },
    /// A label's write is scheduled at or after a read of the same label
    /// (Property 2 / Constraint 8).
    WriteAfterLabelRead {
        /// The label whose write/read are mis-ordered.
        label: LabelId,
        /// Group index of the offending write.
        write_group: usize,
        /// Group index of the offending read.
        read_group: usize,
    },
    /// The transfers issued at `t1` do not finish before the next
    /// communication instant `t2` (Property 3 / Constraint 10).
    OverrunsNextInstant {
        /// The instant whose transfers overrun.
        t1: TimeNs,
        /// The next communication instant (or the horizon).
        t2: TimeNs,
        /// Total duration of the transfers issued at `t1`.
        duration: TimeNs,
    },
    /// A task's worst-case data-acquisition latency exceeds its deadline
    /// `γ_i` (Constraint 9).
    AcquisitionDeadlineMiss {
        /// The task missing its deadline.
        task: TaskId,
        /// The worst-case latency over all communication instants.
        latency: TimeNs,
        /// The configured acquisition deadline `γ_i`.
        deadline: TimeNs,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::MissingCommunication(c) => write!(f, "communication {c} is not scheduled"),
            Self::DuplicateCommunication(c) => {
                write!(f, "communication {c} is scheduled more than once")
            }
            Self::ForeignCommunication(c) => {
                write!(f, "communication {c} is scheduled but not required at s0")
            }
            Self::MalformedLayout { memory, detail } => {
                write!(f, "layout of {memory} is malformed: {detail}")
            }
            Self::NotContiguous { t, group, memory } => write!(
                f,
                "transfer {group} is not contiguous in {memory} at t={t}"
            ),
            Self::WriteAfterOwnRead {
                task,
                write_group,
                read_group,
            } => write!(
                f,
                "property 1 violated for {task}: write in group {write_group} not before read in group {read_group}"
            ),
            Self::WriteAfterLabelRead {
                label,
                write_group,
                read_group,
            } => write!(
                f,
                "property 2 violated for {label}: write in group {write_group} not before read in group {read_group}"
            ),
            Self::OverrunsNextInstant { t1, t2, duration } => write!(
                f,
                "property 3 violated: communications at {t1} take {duration}, past next instant {t2}"
            ),
            Self::AcquisitionDeadlineMiss {
                task,
                latency,
                deadline,
            } => write!(
                f,
                "task {task} misses its acquisition deadline: λ={latency} > γ={deadline}"
            ),
        }
    }
}

/// Options controlling [`verify`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct VerifyOptions {
    /// Whether labels that never cross cores must occupy private slots in
    /// the layout (mirrors the formulation option of `letdma-opt`).
    pub include_private_labels: bool,
    /// Check data-acquisition deadlines `γ_i` (Constraint 9).
    pub check_acquisition_deadlines: bool,
    /// Check Property 3 (transfers finish before the next instant).
    pub check_property3: bool,
}

impl Default for VerifyOptions {
    fn default() -> Self {
        Self {
            include_private_labels: false,
            check_acquisition_deadlines: true,
            check_property3: true,
        }
    }
}

/// Verifies a `(layout, schedule)` pair against every protocol requirement.
///
/// Returns all violations found (empty means the solution is valid). The
/// checks are independent of the optimizer: completeness of the partition
/// (Constraints 1–2), layout well-formedness (Constraints 4–5), per-instant
/// contiguity (Constraint 6, checked at every `t ∈ 𝓣*` per Theorem 1),
/// Properties 1–3 (Constraints 7, 8, 10) and the acquisition deadlines
/// (Constraint 9).
///
/// # Examples
///
/// ```
/// use letdma_model::conformance::{verify, VerifyOptions};
/// use letdma_model::{
///     Communication, DmaTransfer, MemoryLayout, MemoryId, SystemBuilder, TransferSchedule,
///     transfer::{global_slot, local_slot},
/// };
///
/// let mut b = SystemBuilder::new(2);
/// let p = b.task("p").period_ms(5).core_index(0).add()?;
/// let c = b.task("c").period_ms(5).core_index(1).add()?;
/// let l = b.label("l").size(16).writer(p).reader(c).add()?;
/// let sys = b.build()?;
///
/// let w = Communication::write(p, l);
/// let r = Communication::read(l, c);
/// let schedule = TransferSchedule::new(vec![
///     DmaTransfer::new(&sys, vec![w]),
///     DmaTransfer::new(&sys, vec![r]),
/// ]);
/// let mut layout = MemoryLayout::new();
/// layout.set_order(sys.local_memory_of(p), vec![local_slot(w)]);
/// layout.set_order(sys.local_memory_of(c), vec![local_slot(r)]);
/// layout.set_order(MemoryId::Global, vec![global_slot(w)]);
///
/// let violations = verify(&sys, &layout, &schedule, VerifyOptions::default());
/// assert!(violations.is_empty());
/// # Ok::<(), letdma_model::ModelError>(())
/// ```
#[must_use]
pub fn verify(
    system: &System,
    layout: &MemoryLayout,
    schedule: &TransferSchedule,
    options: VerifyOptions,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    check_partition(system, schedule, &mut violations);
    check_layout(
        system,
        layout,
        options.include_private_labels,
        &mut violations,
    );
    check_contiguity(system, layout, schedule, &mut violations);
    check_let_properties(system, schedule, &mut violations);
    if options.check_property3 {
        check_property3(system, schedule, &mut violations);
    }
    if options.check_acquisition_deadlines {
        check_deadlines(system, schedule, &mut violations);
    }
    violations
}

/// Constraints 1–2: every communication of `𝓒(s_0)` in exactly one transfer.
fn check_partition(system: &System, schedule: &TransferSchedule, out: &mut Vec<Violation>) {
    let required: BTreeSet<_> = comms_at_start(system).into_iter().collect();
    let mut seen = BTreeSet::new();
    for tr in schedule.transfers() {
        for &c in tr.comms() {
            if !required.contains(&c) {
                out.push(Violation::ForeignCommunication(c));
            } else if !seen.insert(c) {
                out.push(Violation::DuplicateCommunication(c));
            }
        }
    }
    for &c in required.difference(&seen) {
        out.push(Violation::MissingCommunication(c));
    }
}

/// Constraints 4–5: each memory's layout is a permutation of its required
/// slots.
fn check_layout(
    system: &System,
    layout: &MemoryLayout,
    include_private: bool,
    out: &mut Vec<Violation>,
) {
    let required = MemoryLayout::required_slots(system, include_private);
    for (&memory, slots) in &required {
        let placed = layout.slots(memory);
        let placed_set: BTreeSet<_> = placed.iter().copied().collect();
        if placed.len() != placed_set.len() {
            out.push(Violation::MalformedLayout {
                memory,
                detail: "duplicated slot".into(),
            });
        }
        for &s in slots {
            if !placed_set.contains(&s) {
                out.push(Violation::MalformedLayout {
                    memory,
                    detail: format!("missing slot {s}"),
                });
            }
        }
        for &s in &placed_set {
            if !slots.contains(&s) {
                out.push(Violation::MalformedLayout {
                    memory,
                    detail: format!("unexpected slot {s}"),
                });
            }
        }
    }
    for memory in layout.memories() {
        if !required.contains_key(&memory) && !layout.slots(memory).is_empty() {
            out.push(Violation::MalformedLayout {
                memory,
                detail: "memory should have no slots".into(),
            });
        }
    }
}

/// Constraint 6 / Theorem 1: at every instant, each issued transfer's slots
/// are consecutive *and equally ordered* in both source and destination.
fn check_contiguity(
    system: &System,
    layout: &MemoryLayout,
    schedule: &TransferSchedule,
    out: &mut Vec<Violation>,
) {
    let mut instants = comm_instants(system);
    if instants.is_empty() {
        return;
    }
    // s0 is always in the list; dedup just in case.
    instants.dedup();
    for &t in &instants {
        for (group, tr) in schedule.transfers_at(system, t) {
            let local_mem = tr.local_memory();
            for (memory, slots) in [
                (
                    local_mem,
                    tr.comms()
                        .iter()
                        .map(|&c| local_slot(c))
                        .collect::<Vec<_>>(),
                ),
                (
                    MemoryId::Global,
                    tr.comms()
                        .iter()
                        .map(|&c| global_slot(c))
                        .collect::<Vec<_>>(),
                ),
            ] {
                if !consecutive_in(layout, memory, &slots) {
                    out.push(Violation::NotContiguous { t, group, memory });
                }
            }
        }
    }
}

/// `true` when `slots` occupy consecutive, increasing positions in `memory`.
fn consecutive_in(
    layout: &MemoryLayout,
    memory: MemoryId,
    slots: &[crate::transfer::Slot],
) -> bool {
    let mut prev: Option<usize> = None;
    for &s in slots {
        let Some(pos) = layout.position(memory, s) else {
            return false;
        };
        if let Some(p) = prev {
            if pos != p + 1 {
                return false;
            }
        }
        prev = Some(pos);
    }
    true
}

/// Properties 1 and 2 (Constraints 7–8) on the s₀ ordering.
fn check_let_properties(system: &System, schedule: &TransferSchedule, out: &mut Vec<Violation>) {
    let comms = comms_at_start(system);
    // Property 1: all writes of τ before all reads of τ.
    for task in system.tasks() {
        let writes: Vec<_> = comms
            .iter()
            .filter(|c| c.kind == CommKind::Write && c.task == task.id())
            .filter_map(|&c| schedule.group_of(c))
            .collect();
        let reads: Vec<_> = comms
            .iter()
            .filter(|c| c.kind == CommKind::Read && c.task == task.id())
            .filter_map(|&c| schedule.group_of(c))
            .collect();
        for &w in &writes {
            for &r in &reads {
                if w >= r {
                    out.push(Violation::WriteAfterOwnRead {
                        task: task.id(),
                        write_group: w,
                        read_group: r,
                    });
                }
            }
        }
    }
    // Property 2: the write of ℓ before every read of ℓ.
    for label in system.inter_core_shared_labels() {
        let write = Communication::write(label.writer(), label.id());
        let Some(w) = schedule.group_of(write) else {
            continue; // already reported as missing
        };
        for consumer in system.inter_core_readers(label.id()) {
            let read = Communication::read(label.id(), consumer);
            if let Some(r) = schedule.group_of(read) {
                if w >= r {
                    out.push(Violation::WriteAfterLabelRead {
                        label: label.id(),
                        write_group: w,
                        read_group: r,
                    });
                }
            }
        }
    }
}

/// Property 3 (Constraint 10): transfers issued at `t1` complete before the
/// next communication instant (or before the horizon wraps).
fn check_property3(system: &System, schedule: &TransferSchedule, out: &mut Vec<Violation>) {
    let instants = comm_instants(system);
    if instants.is_empty() {
        return;
    }
    let horizon = system.comm_horizon();
    for (i, &t1) in instants.iter().enumerate() {
        let t2 = instants.get(i + 1).copied().unwrap_or(horizon);
        let duration = schedule.duration_at(system, t1);
        if t1 + duration > t2 {
            out.push(Violation::OverrunsNextInstant { t1, t2, duration });
        }
    }
}

/// Constraint 9: worst-case latency within every task's `γ_i`.
fn check_deadlines(system: &System, schedule: &TransferSchedule, out: &mut Vec<Violation>) {
    let latencies = schedule.worst_case_latencies(system);
    for task in system.tasks() {
        if let Some(gamma) = task.acquisition_deadline() {
            let latency = latencies[&task.id()];
            if latency > gamma {
                out.push(Violation::AcquisitionDeadlineMiss {
                    task: task.id(),
                    latency,
                    deadline: gamma,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transfer::DmaTransfer;
    use crate::{CopyCost, CostModel, SystemBuilder};

    /// Two producer/consumer pairs across two cores plus a correct layout
    /// and schedule.
    struct Fixture {
        sys: System,
        w1: Communication,
        w2: Communication,
        r1: Communication,
        r2: Communication,
    }

    fn fixture() -> Fixture {
        let mut b = SystemBuilder::new(2);
        b.set_costs(CostModel::new(
            TimeNs::from_us(1),
            TimeNs::ZERO,
            CopyCost::per_byte(1, 1).unwrap(),
        ));
        let p1 = b.task("p1").period_ms(5).core_index(0).add().unwrap();
        let c1 = b.task("c1").period_ms(5).core_index(1).add().unwrap();
        let p2 = b.task("p2").period_ms(10).core_index(0).add().unwrap();
        let c2 = b.task("c2").period_ms(10).core_index(1).add().unwrap();
        let l1 = b.label("l1").size(100).writer(p1).reader(c1).add().unwrap();
        let l2 = b.label("l2").size(200).writer(p2).reader(c2).add().unwrap();
        let sys = b.build().unwrap();
        Fixture {
            w1: Communication::write(p1, l1),
            w2: Communication::write(p2, l2),
            r1: Communication::read(l1, c1),
            r2: Communication::read(l2, c2),
            sys,
        }
    }

    fn good_layout(f: &Fixture) -> MemoryLayout {
        let mut layout = MemoryLayout::new();
        layout.set_order(
            f.w1.local_memory(&f.sys),
            vec![local_slot(f.w1), local_slot(f.w2)],
        );
        layout.set_order(
            f.r1.local_memory(&f.sys),
            vec![local_slot(f.r1), local_slot(f.r2)],
        );
        layout.set_order(MemoryId::Global, vec![global_slot(f.w1), global_slot(f.w2)]);
        layout
    }

    fn good_schedule(f: &Fixture) -> TransferSchedule {
        TransferSchedule::new(vec![
            DmaTransfer::new(&f.sys, vec![f.w1, f.w2]),
            DmaTransfer::new(&f.sys, vec![f.r1, f.r2]),
        ])
    }

    #[test]
    fn valid_solution_passes() {
        let f = fixture();
        let v = verify(
            &f.sys,
            &good_layout(&f),
            &good_schedule(&f),
            VerifyOptions::default(),
        );
        assert!(v.is_empty(), "unexpected violations: {v:?}");
    }

    #[test]
    fn missing_comm_detected() {
        let f = fixture();
        let schedule = TransferSchedule::new(vec![
            DmaTransfer::new(&f.sys, vec![f.w1, f.w2]),
            DmaTransfer::new(&f.sys, vec![f.r1]),
        ]);
        let v = verify(
            &f.sys,
            &good_layout(&f),
            &schedule,
            VerifyOptions::default(),
        );
        assert!(v.contains(&Violation::MissingCommunication(f.r2)));
    }

    #[test]
    fn duplicate_comm_detected() {
        let f = fixture();
        let schedule = TransferSchedule::new(vec![
            DmaTransfer::new(&f.sys, vec![f.w1, f.w2]),
            DmaTransfer::new(&f.sys, vec![f.r1, f.r2]),
            DmaTransfer::new(&f.sys, vec![f.r1]),
        ]);
        let v = verify(
            &f.sys,
            &good_layout(&f),
            &schedule,
            VerifyOptions::default(),
        );
        assert!(v.contains(&Violation::DuplicateCommunication(f.r1)));
    }

    #[test]
    fn property1_violation_detected() {
        let f = fixture();
        // p1's write after c1's read is fine for property 1 (different
        // tasks), but swapping a task's own read before its write is not.
        // Here: put the read of c1 first and ALSO make c1 write something.
        // Simpler: violate property 2 ordering which also flags.
        let schedule = TransferSchedule::new(vec![
            DmaTransfer::new(&f.sys, vec![f.r1, f.r2]),
            DmaTransfer::new(&f.sys, vec![f.w1, f.w2]),
        ]);
        let v = verify(
            &f.sys,
            &good_layout(&f),
            &schedule,
            VerifyOptions::default(),
        );
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::WriteAfterLabelRead { .. })));
    }

    #[test]
    fn property1_same_task_detected() {
        // One task both writes one label and reads another.
        let mut b = SystemBuilder::new(2);
        let a = b.task("a").period_ms(5).core_index(0).add().unwrap();
        let z = b.task("z").period_ms(5).core_index(1).add().unwrap();
        let la = b.label("la").size(10).writer(a).reader(z).add().unwrap();
        let lz = b.label("lz").size(10).writer(z).reader(a).add().unwrap();
        let sys = b.build().unwrap();
        let wa = Communication::write(a, la);
        let ra = Communication::read(lz, a);
        let wz = Communication::write(z, lz);
        let rz = Communication::read(la, z);
        // Order: a's read before a's write → property 1 violation for a
        // (and property 2 for la is satisfied or not separately).
        let schedule = TransferSchedule::new(vec![
            DmaTransfer::new(&sys, vec![wz]),
            DmaTransfer::new(&sys, vec![ra]),
            DmaTransfer::new(&sys, vec![wa]),
            DmaTransfer::new(&sys, vec![rz]),
        ]);
        let mut layout = MemoryLayout::new();
        layout.set_order(sys.local_memory_of(a), vec![local_slot(wa), local_slot(ra)]);
        layout.set_order(sys.local_memory_of(z), vec![local_slot(wz), local_slot(rz)]);
        layout.set_order(MemoryId::Global, vec![global_slot(wa), global_slot(wz)]);
        let v = verify(&sys, &layout, &schedule, VerifyOptions::default());
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::WriteAfterOwnRead { task, .. } if *task == a)));
    }

    #[test]
    fn contiguity_violation_detected() {
        let f = fixture();
        // Swap the order of global slots so the grouped write transfer
        // [w1, w2] is contiguous locally but reversed globally.
        let mut layout = good_layout(&f);
        layout.set_order(MemoryId::Global, vec![global_slot(f.w2), global_slot(f.w1)]);
        let v = verify(
            &f.sys,
            &layout,
            &good_schedule(&f),
            VerifyOptions::default(),
        );
        assert!(v.iter().any(|x| matches!(
            x,
            Violation::NotContiguous {
                memory: MemoryId::Global,
                ..
            }
        )));
    }

    #[test]
    fn contiguity_checked_at_later_instants() {
        // Three 5ms/10ms comms from the same core: group [w_fast1, w_slow,
        // w_fast2]. At t = 5ms the slow write drops out and the remaining
        // slots are no longer contiguous → violation at t=5ms only.
        let mut b = SystemBuilder::new(2);
        b.set_costs(CostModel::new(
            TimeNs::from_us(1),
            TimeNs::ZERO,
            CopyCost::ZERO,
        ));
        let pf1 = b.task("pf1").period_ms(5).core_index(0).add().unwrap();
        let ps = b.task("ps").period_ms(10).core_index(0).add().unwrap();
        let pf2 = b.task("pf2").period_ms(5).core_index(0).add().unwrap();
        let cf1 = b.task("cf1").period_ms(5).core_index(1).add().unwrap();
        let cs = b.task("cs").period_ms(10).core_index(1).add().unwrap();
        let cf2 = b.task("cf2").period_ms(5).core_index(1).add().unwrap();
        let lf1 = b
            .label("lf1")
            .size(8)
            .writer(pf1)
            .reader(cf1)
            .add()
            .unwrap();
        let ls = b.label("ls").size(8).writer(ps).reader(cs).add().unwrap();
        let lf2 = b
            .label("lf2")
            .size(8)
            .writer(pf2)
            .reader(cf2)
            .add()
            .unwrap();
        let sys = b.build().unwrap();
        let w_f1 = Communication::write(pf1, lf1);
        let w_s = Communication::write(ps, ls);
        let w_f2 = Communication::write(pf2, lf2);
        let r_f1 = Communication::read(lf1, cf1);
        let r_s = Communication::read(ls, cs);
        let r_f2 = Communication::read(lf2, cf2);
        let schedule = TransferSchedule::new(vec![
            DmaTransfer::new(&sys, vec![w_f1, w_s, w_f2]),
            DmaTransfer::new(&sys, vec![r_f1, r_s, r_f2]),
        ]);
        let mut layout = MemoryLayout::new();
        layout.set_order(
            sys.local_memory_of(pf1),
            vec![local_slot(w_f1), local_slot(w_s), local_slot(w_f2)],
        );
        layout.set_order(
            sys.local_memory_of(cf1),
            vec![local_slot(r_f1), local_slot(r_s), local_slot(r_f2)],
        );
        layout.set_order(
            MemoryId::Global,
            vec![global_slot(w_f1), global_slot(w_s), global_slot(w_f2)],
        );
        let v = verify(&sys, &layout, &schedule, VerifyOptions::default());
        let t5 = TimeNs::from_ms(5);
        assert!(
            v.iter()
                .any(|x| matches!(x, Violation::NotContiguous { t, .. } if *t == t5)),
            "expected a contiguity violation at t=5ms, got {v:?}"
        );
        assert!(
            !v.iter()
                .any(|x| matches!(x, Violation::NotContiguous { t, .. } if *t == TimeNs::ZERO)),
            "no violation expected at s0"
        );
    }

    #[test]
    fn property3_violation_detected() {
        // Huge label so transfers at s0 overrun the 5 ms gap to the next
        // instant (1 ns/B ⇒ 100 MB ≈ 100 ms ≫ 5 ms).
        let mut b = SystemBuilder::new(2);
        b.set_costs(CostModel::new(
            TimeNs::from_us(1),
            TimeNs::ZERO,
            CopyCost::per_byte(1, 1).unwrap(),
        ));
        let p = b.task("p").period_ms(5).core_index(0).add().unwrap();
        let c = b.task("c").period_ms(5).core_index(1).add().unwrap();
        let l = b
            .label("big")
            .size(100_000_000)
            .writer(p)
            .reader(c)
            .add()
            .unwrap();
        let sys = b.build().unwrap();
        let w = Communication::write(p, l);
        let r = Communication::read(l, c);
        let schedule = TransferSchedule::new(vec![
            DmaTransfer::new(&sys, vec![w]),
            DmaTransfer::new(&sys, vec![r]),
        ]);
        let mut layout = MemoryLayout::new();
        layout.set_order(sys.local_memory_of(p), vec![local_slot(w)]);
        layout.set_order(sys.local_memory_of(c), vec![local_slot(r)]);
        layout.set_order(MemoryId::Global, vec![global_slot(w)]);
        let v = verify(&sys, &layout, &schedule, VerifyOptions::default());
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::OverrunsNextInstant { .. })));
    }

    #[test]
    fn deadline_miss_detected_and_respected() {
        let f = fixture();
        let mut sys = f.sys.clone();
        let c2 = sys.task_by_name("c2").unwrap().id();
        // λ for c2 at s0: both groups run, sizes 300 + 300 bytes at 1 ns/B
        // plus 2 µs overhead = 2600 ns.
        sys.set_acquisition_deadline(c2, Some(TimeNs::from_ns(2_599)));
        let f2 = Fixture { sys, ..f };
        let v = verify(
            &f2.sys,
            &good_layout(&f2),
            &good_schedule(&f2),
            VerifyOptions::default(),
        );
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::AcquisitionDeadlineMiss { task, .. } if *task == c2)));
        let mut sys_ok = f2.sys.clone();
        sys_ok.set_acquisition_deadline(c2, Some(TimeNs::from_ns(2_600)));
        let f3 = Fixture { sys: sys_ok, ..f2 };
        let v = verify(
            &f3.sys,
            &good_layout(&f3),
            &good_schedule(&f3),
            VerifyOptions::default(),
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn malformed_layout_detected() {
        let f = fixture();
        let mut layout = good_layout(&f);
        // Remove a required global slot.
        layout.set_order(MemoryId::Global, vec![global_slot(f.w1)]);
        let v = verify(
            &f.sys,
            &layout,
            &good_schedule(&f),
            VerifyOptions::default(),
        );
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::MalformedLayout { .. })));
    }

    #[test]
    fn violations_display() {
        let f = fixture();
        let v = Violation::MissingCommunication(f.w1);
        assert!(v.to_string().contains("not scheduled"));
    }
}
