//! LET communication semantics: skip rules, communication instants and
//! Algorithm 1 (§IV and §V-A of the paper).
//!
//! # Skip rules
//!
//! Depending on the period ratio of a producer `τ_p` and a consumer `τ_c`,
//! some LET writes/reads are unnecessary and can be skipped [Biondi & Di
//! Natale, RTAS 2018]:
//!
//! * **oversampled producer** (`T_p < T_c`): a write is only needed if its
//!   value survives until a consumer read, i.e. at instants
//!   `{⌊v·T_c/T_p⌋·T_p | v ∈ ℕ}`;
//! * **oversampled consumer** (`T_c < T_p`): a read is only needed when the
//!   value may have changed, i.e. at instants `{⌈v·T_p/T_c⌉·T_c | v ∈ ℕ}`;
//! * otherwise every write (multiples of `T_p`) / read (multiples of `T_c`)
//!   is needed.
//!
//! These are Eqs. (1) and (2) of the paper, written as *time instants* rather
//! than job indices (the paper's subscripts mix the two; the first-principles
//! form below is equivalent and is validated by exhaustive tests against a
//! naive LET interpreter).
//!
//! Both instant sets repeat with period `lcm(T_p, T_c)` and always contain
//! `t = 0`, hence `𝓒(t) ⊆ 𝓒(s_0)` for every `t ∈ 𝓣*`.

use crate::ids::{LabelId, MemoryId, TaskId};
use crate::system::System;
use crate::time::{div_ceil_u64, TimeNs};

/// Direction of a LET communication.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum CommKind {
    /// `W(τ_p, ℓ)`: copy from the producer's local copy to the shared label
    /// in global memory.
    Write,
    /// `R(ℓ, τ_c)`: copy from the shared label in global memory to the
    /// consumer's local copy.
    Read,
}

/// One LET communication: a write `W(τ, ℓ)` or a read `R(ℓ, τ)`.
///
/// For a write, `task` is the unique producer of `label`; for a read, `task`
/// is one of its inter-core consumers. A label with several inter-core
/// consumers generates one write plus one read per consumer.
///
/// The derived `Ord` (kind, then task, then label — writes before reads) is
/// the deterministic ordering used to index `𝓒(s_0)` everywhere in this
/// workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Communication {
    /// Write or read.
    pub kind: CommKind,
    /// The producer (for writes) or consumer (for reads).
    pub task: TaskId,
    /// The shared label being moved.
    pub label: LabelId,
}

impl Communication {
    /// Creates the write communication `W(producer, label)`.
    #[must_use]
    pub const fn write(producer: TaskId, label: LabelId) -> Self {
        Self {
            kind: CommKind::Write,
            task: producer,
            label,
        }
    }

    /// Creates the read communication `R(label, consumer)`.
    #[must_use]
    pub const fn read(label: LabelId, consumer: TaskId) -> Self {
        Self {
            kind: CommKind::Read,
            task: consumer,
            label,
        }
    }

    /// The local memory on the non-global side of this communication:
    /// `M(τ)` of the producing/consuming task.
    #[must_use]
    pub fn local_memory(&self, system: &System) -> MemoryId {
        system.local_memory_of(self.task)
    }

    /// Source memory of the copy (local for writes, global for reads).
    #[must_use]
    pub fn source_memory(&self, system: &System) -> MemoryId {
        match self.kind {
            CommKind::Write => self.local_memory(system),
            CommKind::Read => MemoryId::Global,
        }
    }

    /// Destination memory of the copy (global for writes, local for reads).
    #[must_use]
    pub fn destination_memory(&self, system: &System) -> MemoryId {
        match self.kind {
            CommKind::Write => MemoryId::Global,
            CommKind::Read => self.local_memory(system),
        }
    }

    /// Number of bytes moved (`σ_l` of the label).
    #[must_use]
    pub fn bytes(&self, system: &System) -> u64 {
        system.label(self.label).size()
    }
}

impl std::fmt::Display for Communication {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            CommKind::Write => write!(f, "W({}, {})", self.task, self.label),
            CommKind::Read => write!(f, "R({}, {})", self.label, self.task),
        }
    }
}

/// Returns `true` if the producer-side write for the pair `(T_p, T_c)` is
/// required at instant `t` (Eq. 1, as a membership test).
///
/// `t` must be a release instant of the producer (a multiple of `t_p`),
/// otherwise the result is `false`.
///
/// # Panics
///
/// Panics if either period is zero.
#[must_use]
pub fn write_needed_at(t: TimeNs, t_p: TimeNs, t_c: TimeNs) -> bool {
    assert!(
        t_p != TimeNs::ZERO && t_c != TimeNs::ZERO,
        "periods nonzero"
    );
    if !t.is_multiple_of(t_p) {
        return false;
    }
    if t_p >= t_c {
        // Every producer write is eventually consumed.
        return true;
    }
    // Oversampled producer: the write at k·T_p is needed iff some consumer
    // release falls in [k·T_p, (k+1)·T_p), i.e. the value is the last one
    // published before that read.
    let k = t / t_p;
    let first_read_at_or_after = div_ceil_u64(k * t_p.as_ns(), t_c.as_ns()) * t_c.as_ns();
    first_read_at_or_after < (k + 1) * t_p.as_ns()
}

/// Returns `true` if the consumer-side read for the pair `(T_p, T_c)` is
/// required at instant `t` (Eq. 2, as a membership test).
///
/// `t` must be a release instant of the consumer (a multiple of `t_c`),
/// otherwise the result is `false`.
///
/// # Panics
///
/// Panics if either period is zero.
#[must_use]
pub fn read_needed_at(t: TimeNs, t_p: TimeNs, t_c: TimeNs) -> bool {
    assert!(
        t_p != TimeNs::ZERO && t_c != TimeNs::ZERO,
        "periods nonzero"
    );
    if !t.is_multiple_of(t_c) {
        return false;
    }
    if t_c >= t_p {
        // Every consumer read may observe a fresh value.
        return true;
    }
    if t == TimeNs::ZERO {
        // The initial read always happens.
        return true;
    }
    // Oversampled consumer: the read at u·T_c is needed iff a producer write
    // (a multiple of T_p) falls in ((u-1)·T_c, u·T_c].
    let u = t / t_c;
    let last_write_at_or_before = (t.as_ns() / t_p.as_ns()) * t_p.as_ns();
    last_write_at_or_before > (u - 1) * t_c.as_ns()
}

/// The LET writes `G^W(t, τ_i)` and reads `G^R(t, τ_i)` required by task
/// `τ_i` at instant `t` — the output of Algorithm 1.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LetGroup {
    /// `G^W(t, τ_i)`: writes issued by the task at `t`, sorted.
    pub writes: Vec<Communication>,
    /// `G^R(t, τ_i)`: reads issued for the task at `t`, sorted.
    pub reads: Vec<Communication>,
}

impl LetGroup {
    /// `true` when the task needs no LET communication at this instant.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.writes.is_empty() && self.reads.is_empty()
    }

    /// All communications of the group, writes first.
    pub fn iter(&self) -> impl Iterator<Item = Communication> + '_ {
        self.writes.iter().chain(self.reads.iter()).copied()
    }
}

/// Computes `G^W(t, τ_i)` and `G^R(t, τ_i)` — Algorithm 1 of the paper.
///
/// Writes of `task` are included when *some* inter-core consumer of the label
/// still needs the value written at `t`; reads are included per
/// (label, consumer) pair when the skip rule requires them.
///
/// # Panics
///
/// Panics if `task` does not belong to `system`.
#[must_use]
pub fn let_group(system: &System, task: TaskId, t: TimeNs) -> LetGroup {
    let t_i = system.task(task).period();
    let mut group = LetGroup::default();
    for label in system.inter_core_shared_labels() {
        if label.writer() == task {
            // W(τ_i, ℓ) needed iff at least one inter-core consumer of ℓ
            // consumes this particular write.
            let needed = system
                .inter_core_readers(label.id())
                .any(|c| write_needed_at(t, t_i, system.task(c).period()));
            if needed {
                group.writes.push(Communication::write(task, label.id()));
            }
        } else if system.inter_core_readers(label.id()).any(|c| c == task) {
            let t_p = system.task(label.writer()).period();
            if read_needed_at(t, t_p, t_i) {
                group.reads.push(Communication::read(label.id(), task));
            }
        }
    }
    group.writes.sort_unstable();
    group.reads.sort_unstable();
    group
}

/// The set `𝓒(t)` of all LET communications required at instant `t`,
/// in deterministic sorted order (writes before reads).
#[must_use]
pub fn comms_at(system: &System, t: TimeNs) -> Vec<Communication> {
    let mut comms = Vec::new();
    for task in system.tasks() {
        let g = let_group(system, task.id(), t);
        comms.extend(g.writes);
        comms.extend(g.reads);
    }
    comms.sort_unstable();
    comms.dedup();
    comms
}

/// The set `𝓒(s_0)` of all LET communications at the synchronous start.
///
/// Every inter-core shared label contributes exactly one write plus one read
/// per inter-core consumer, so this is the complete communication set:
/// `𝓒(t) ⊆ 𝓒(s_0)` for every `t ∈ 𝓣*`.
#[must_use]
pub fn comms_at_start(system: &System) -> Vec<Communication> {
    comms_at(system, TimeNs::ZERO)
}

/// The ordered communication instants `𝓣* = {t ∈ [0, H) | 𝓒(t) ≠ ∅}`,
/// where `H` is [`System::comm_horizon`].
///
/// The result always starts with `s_0 = 0` when any task communicates.
#[must_use]
pub fn comm_instants(system: &System) -> Vec<TimeNs> {
    let horizon = system.comm_horizon();
    let mut instants = std::collections::BTreeSet::new();
    for (p, c) in system.communicating_pairs() {
        let t_p = system.task(p).period();
        let t_c = system.task(c).period();
        // Candidate instants are producer releases (writes) and consumer
        // releases (reads); membership is decided by the skip rules.
        let mut t = TimeNs::ZERO;
        while t < horizon {
            if write_needed_at(t, t_p, t_c) {
                instants.insert(t);
            }
            t += t_p;
        }
        let mut t = TimeNs::ZERO;
        while t < horizon {
            if read_needed_at(t, t_p, t_c) {
                instants.insert(t);
            }
            t += t_c;
        }
    }
    instants.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SystemBuilder;

    /// Naive LET interpreter used as ground truth: simulate publication and
    /// consumption job by job and mark which writes/reads transfer a value
    /// that is actually observed / actually fresh.
    mod naive {
        use super::TimeNs;

        /// All producer writes in `[0, horizon)` whose value is read by some
        /// consumer job before being overwritten.
        pub fn needed_writes(t_p: TimeNs, t_c: TimeNs, horizon: TimeNs) -> Vec<TimeNs> {
            let mut out = Vec::new();
            let mut t = TimeNs::ZERO;
            while t < horizon {
                // The value written at t lives during [t, t + T_p).
                // It is consumed iff a consumer release falls in that window
                // (consumer reading at r uses the last write ≤ r).
                let k0 = t.as_ns().div_ceil(t_c.as_ns());
                let first_read = TimeNs::from_ns(k0 * t_c.as_ns());
                if first_read < t + t_p {
                    out.push(t);
                }
                t += t_p;
            }
            out
        }

        /// All consumer reads in `[0, horizon)` that may observe a value
        /// different from the previous read (plus the initial read).
        pub fn needed_reads(t_p: TimeNs, t_c: TimeNs, horizon: TimeNs) -> Vec<TimeNs> {
            let mut out = Vec::new();
            let mut prev_version = None;
            let mut t = TimeNs::ZERO;
            while t < horizon {
                let version = t.as_ns() / t_p.as_ns(); // index of last write ≤ t
                if prev_version != Some(version) {
                    out.push(t);
                }
                prev_version = Some(version);
                t += t_c;
            }
            out
        }
    }

    fn check_pair(p_ms: u64, c_ms: u64) {
        let t_p = TimeNs::from_ms(p_ms);
        let t_c = TimeNs::from_ms(c_ms);
        let horizon = t_p.lcm(t_c) * 2;
        let expected_w = naive::needed_writes(t_p, t_c, horizon);
        let expected_r = naive::needed_reads(t_p, t_c, horizon);
        let mut got_w = Vec::new();
        let mut t = TimeNs::ZERO;
        while t < horizon {
            if write_needed_at(t, t_p, t_c) {
                got_w.push(t);
            }
            t += t_p;
        }
        let mut got_r = Vec::new();
        let mut t = TimeNs::ZERO;
        while t < horizon {
            if read_needed_at(t, t_p, t_c) {
                got_r.push(t);
            }
            t += t_c;
        }
        assert_eq!(got_w, expected_w, "writes for T_p={p_ms}ms T_c={c_ms}ms");
        assert_eq!(got_r, expected_r, "reads for T_p={p_ms}ms T_c={c_ms}ms");
    }

    #[test]
    fn skip_rules_match_naive_interpreter() {
        for (p, c) in [
            (5, 5),
            (5, 10),
            (10, 5),
            (5, 15),
            (15, 5),
            (10, 15),
            (15, 10),
            (33, 15),
            (15, 33),
            (5, 33),
            (33, 5),
            (7, 3),
            (3, 7),
            (200, 400),
            (400, 200),
        ] {
            check_pair(p, c);
        }
    }

    #[test]
    fn all_needed_when_harmonic_equal() {
        let t5 = TimeNs::from_ms(5);
        for k in 0..6 {
            assert!(write_needed_at(t5 * k, t5, t5));
            assert!(read_needed_at(t5 * k, t5, t5));
        }
    }

    #[test]
    fn oversampled_producer_skips_writes() {
        // T_p = 5, T_c = 10: writes at 0, 5, 10, 15, … but only those whose
        // value is read survive: reads at 0, 10 consume writes at 0 and 10.
        // The write at 5 is overwritten at 10 before the read → skipped.
        let t_p = TimeNs::from_ms(5);
        let t_c = TimeNs::from_ms(10);
        assert!(write_needed_at(TimeNs::ZERO, t_p, t_c));
        assert!(!write_needed_at(TimeNs::from_ms(5), t_p, t_c));
        assert!(write_needed_at(TimeNs::from_ms(10), t_p, t_c));
        // Reads all needed (consumer slower than producer).
        assert!(read_needed_at(TimeNs::ZERO, t_p, t_c));
        assert!(read_needed_at(TimeNs::from_ms(10), t_p, t_c));
    }

    #[test]
    fn oversampled_consumer_skips_reads() {
        // T_p = 10, T_c = 5: reads at 0, 5, 10, …; the value changes only at
        // multiples of 10, so reads at odd multiples of 5 are skipped.
        let t_p = TimeNs::from_ms(10);
        let t_c = TimeNs::from_ms(5);
        assert!(read_needed_at(TimeNs::ZERO, t_p, t_c));
        assert!(!read_needed_at(TimeNs::from_ms(5), t_p, t_c));
        assert!(read_needed_at(TimeNs::from_ms(10), t_p, t_c));
        // All writes needed (producer slower).
        assert!(write_needed_at(TimeNs::ZERO, t_p, t_c));
        assert!(write_needed_at(TimeNs::from_ms(10), t_p, t_c));
    }

    #[test]
    fn non_release_instants_are_never_needed() {
        let t_p = TimeNs::from_ms(10);
        let t_c = TimeNs::from_ms(15);
        assert!(!write_needed_at(TimeNs::from_ms(3), t_p, t_c));
        assert!(!read_needed_at(TimeNs::from_ms(3), t_p, t_c));
    }

    fn two_core_system() -> (System, TaskId, TaskId, LabelId) {
        let mut b = SystemBuilder::new(2);
        let p = b.task("p").period_ms(5).core_index(0).add().unwrap();
        let c = b.task("c").period_ms(10).core_index(1).add().unwrap();
        let l = b.label("l").size(64).writer(p).reader(c).add().unwrap();
        (b.build().unwrap(), p, c, l)
    }

    use crate::System;

    #[test]
    fn let_group_at_start_contains_everything() {
        let (sys, p, c, l) = two_core_system();
        let gp = let_group(&sys, p, TimeNs::ZERO);
        assert_eq!(gp.writes, vec![Communication::write(p, l)]);
        assert!(gp.reads.is_empty());
        let gc = let_group(&sys, c, TimeNs::ZERO);
        assert!(gc.writes.is_empty());
        assert_eq!(gc.reads, vec![Communication::read(l, c)]);
    }

    #[test]
    fn let_group_skips_unconsumed_write() {
        let (sys, p, _, _) = two_core_system();
        // Producer at 5 ms, consumer at 10 ms: write at t = 5 ms is skipped.
        let g = let_group(&sys, p, TimeNs::from_ms(5));
        assert!(g.is_empty());
        let g = let_group(&sys, p, TimeNs::from_ms(10));
        assert_eq!(g.writes.len(), 1);
    }

    #[test]
    fn comms_subset_property() {
        // 𝓒(t) ⊆ 𝓒(s_0) for all t ∈ 𝓣*.
        let (sys, ..) = two_core_system();
        let at_start = comms_at_start(&sys);
        for t in comm_instants(&sys) {
            for comm in comms_at(&sys, t) {
                assert!(at_start.contains(&comm), "{comm} at {t} not in C(s0)");
            }
        }
    }

    #[test]
    fn comm_instants_start_at_zero_and_stay_in_horizon() {
        let (sys, ..) = two_core_system();
        let instants = comm_instants(&sys);
        assert_eq!(instants.first(), Some(&TimeNs::ZERO));
        let horizon = sys.comm_horizon();
        assert!(instants.iter().all(|&t| t < horizon));
        // For (5, 10): writes needed at 0 and 10 (mod 10 → {0}), reads at 0.
        // Within [0, 10): only t = 0.
        assert_eq!(instants, vec![TimeNs::ZERO]);
    }

    #[test]
    fn multi_reader_label_generates_one_read_per_consumer() {
        let mut b = SystemBuilder::new(3);
        let p = b.task("p").period_ms(10).core_index(0).add().unwrap();
        let c1 = b.task("c1").period_ms(10).core_index(1).add().unwrap();
        let c2 = b.task("c2").period_ms(10).core_index(2).add().unwrap();
        let l = b
            .label("l")
            .size(8)
            .writer(p)
            .readers([c1, c2])
            .add()
            .unwrap();
        let sys = b.build().unwrap();
        let comms = comms_at_start(&sys);
        assert_eq!(comms.len(), 3);
        assert!(comms.contains(&Communication::write(p, l)));
        assert!(comms.contains(&Communication::read(l, c1)));
        assert!(comms.contains(&Communication::read(l, c2)));
    }

    #[test]
    fn same_core_reader_does_not_communicate() {
        let mut b = SystemBuilder::new(2);
        let p = b.task("p").period_ms(10).core_index(0).add().unwrap();
        let same = b.task("same").period_ms(10).core_index(0).add().unwrap();
        b.label("l").size(8).writer(p).reader(same).add().unwrap();
        let sys = b.build().unwrap();
        assert!(comms_at_start(&sys).is_empty());
        assert!(comm_instants(&sys).is_empty());
    }

    #[test]
    fn communication_memories_and_bytes() {
        let (sys, p, c, l) = two_core_system();
        let w = Communication::write(p, l);
        let r = Communication::read(l, c);
        assert_eq!(w.source_memory(&sys), sys.local_memory_of(p));
        assert_eq!(w.destination_memory(&sys), MemoryId::Global);
        assert_eq!(r.source_memory(&sys), MemoryId::Global);
        assert_eq!(r.destination_memory(&sys), sys.local_memory_of(c));
        assert_eq!(w.bytes(&sys), 64);
        assert_eq!(w.to_string(), format!("W({p}, {l})"));
        assert_eq!(r.to_string(), format!("R({l}, {c})"));
    }
}
