//! Exact integer time arithmetic.
//!
//! All times in this crate are integer nanoseconds wrapped in [`TimeNs`].
//! Using integers keeps hyperperiod arithmetic (LCMs over task periods) exact,
//! which the LET semantics relies on: a communication instant is *exactly* a
//! multiple of a period, never approximately.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// A point in time or a duration, in integer nanoseconds.
///
/// `TimeNs` is used both for absolute instants (relative to the synchronous
/// system start `s_0 = 0`) and for durations (periods, latencies, overheads);
/// the LET model never needs negative times, so the representation is
/// unsigned and subtraction panics on underflow in debug builds (and is
/// checked through [`TimeNs::checked_sub`] where underflow is a real
/// possibility).
///
/// # Examples
///
/// ```
/// use letdma_model::TimeNs;
///
/// let period = TimeNs::from_ms(5);
/// assert_eq!(period.as_ns(), 5_000_000);
/// assert_eq!(period * 3, TimeNs::from_ms(15));
/// assert_eq!(TimeNs::from_us(10) + TimeNs::from_us(5), TimeNs::from_us(15));
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TimeNs(u64);

impl TimeNs {
    /// The time origin `s_0 = 0` (also the zero duration).
    pub const ZERO: Self = Self(0);

    /// Largest representable time.
    pub const MAX: Self = Self(u64::MAX);

    /// Creates a time from raw nanoseconds.
    #[must_use]
    pub const fn from_ns(ns: u64) -> Self {
        Self(ns)
    }

    /// Creates a time from microseconds.
    #[must_use]
    pub const fn from_us(us: u64) -> Self {
        Self(us * 1_000)
    }

    /// Creates a time from milliseconds.
    #[must_use]
    pub const fn from_ms(ms: u64) -> Self {
        Self(ms * 1_000_000)
    }

    /// Creates a time from seconds.
    #[must_use]
    pub const fn from_s(s: u64) -> Self {
        Self(s * 1_000_000_000)
    }

    /// Returns the raw nanosecond count.
    #[must_use]
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Returns this time as (possibly fractional) microseconds.
    #[must_use]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns this time as (possibly fractional) milliseconds.
    #[must_use]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Checked subtraction; `None` when `rhs > self`.
    #[must_use]
    pub const fn checked_sub(self, rhs: Self) -> Option<Self> {
        match self.0.checked_sub(rhs.0) {
            Some(v) => Some(Self(v)),
            None => None,
        }
    }

    /// Checked addition; `None` on overflow.
    #[must_use]
    pub const fn checked_add(self, rhs: Self) -> Option<Self> {
        match self.0.checked_add(rhs.0) {
            Some(v) => Some(Self(v)),
            None => None,
        }
    }

    /// Saturating subtraction (clamps at zero).
    #[must_use]
    pub const fn saturating_sub(self, rhs: Self) -> Self {
        Self(self.0.saturating_sub(rhs.0))
    }

    /// Returns `true` if this time is an exact multiple of `period`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    #[must_use]
    pub fn is_multiple_of(self, period: Self) -> bool {
        assert!(period.0 != 0, "period must be nonzero");
        self.0 % period.0 == 0
    }

    /// Least common multiple of two times, e.g. of two task periods.
    ///
    /// # Panics
    ///
    /// Panics if either operand is zero or if the LCM overflows `u64`.
    #[must_use]
    pub fn lcm(self, other: Self) -> Self {
        Self(lcm_u64(self.0, other.0))
    }

    /// Greatest common divisor of two times.
    #[must_use]
    pub const fn gcd(self, other: Self) -> Self {
        Self(gcd_u64(self.0, other.0))
    }
}

impl fmt::Display for TimeNs {
    /// Pretty-prints with an adaptive unit: `ns`, `µs`, `ms` or `s`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns == 0 {
            write!(f, "0")
        } else if ns % 1_000_000_000 == 0 {
            write!(f, "{}s", ns / 1_000_000_000)
        } else if ns % 1_000_000 == 0 {
            write!(f, "{}ms", ns / 1_000_000)
        } else if ns % 1_000 == 0 {
            write!(f, "{}µs", ns / 1_000)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

impl Add for TimeNs {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl AddAssign for TimeNs {
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Sub for TimeNs {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Self(self.0 - rhs.0)
    }
}

impl SubAssign for TimeNs {
    fn sub_assign(&mut self, rhs: Self) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for TimeNs {
    type Output = Self;
    fn mul(self, rhs: u64) -> Self {
        Self(self.0 * rhs)
    }
}

impl Div<TimeNs> for TimeNs {
    type Output = u64;
    /// Integer division of two times (e.g. `H / T_i` = number of jobs).
    fn div(self, rhs: TimeNs) -> u64 {
        self.0 / rhs.0
    }
}

impl Rem<TimeNs> for TimeNs {
    type Output = TimeNs;
    fn rem(self, rhs: TimeNs) -> TimeNs {
        Self(self.0 % rhs.0)
    }
}

impl Sum for TimeNs {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, Add::add)
    }
}

/// Greatest common divisor on raw `u64` values (Euclid).
#[must_use]
pub const fn gcd_u64(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Least common multiple on raw `u64` values.
///
/// # Panics
///
/// Panics if `a == 0`, `b == 0`, or the result overflows `u64`.
#[must_use]
pub fn lcm_u64(a: u64, b: u64) -> u64 {
    assert!(a != 0 && b != 0, "lcm of zero is undefined here");
    let g = gcd_u64(a, b);
    (a / g).checked_mul(b).expect("lcm overflow")
}

/// Ceiling division `⌈a / b⌉` on `u64`.
///
/// # Panics
///
/// Panics if `b == 0`.
#[must_use]
pub const fn div_ceil_u64(a: u64, b: u64) -> u64 {
    a.div_ceil(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(TimeNs::from_us(1), TimeNs::from_ns(1_000));
        assert_eq!(TimeNs::from_ms(1), TimeNs::from_us(1_000));
        assert_eq!(TimeNs::from_s(1), TimeNs::from_ms(1_000));
    }

    #[test]
    fn display_adapts_unit() {
        assert_eq!(TimeNs::ZERO.to_string(), "0");
        assert_eq!(TimeNs::from_ns(7).to_string(), "7ns");
        assert_eq!(TimeNs::from_us(3).to_string(), "3µs");
        assert_eq!(TimeNs::from_ms(12).to_string(), "12ms");
        assert_eq!(TimeNs::from_s(2).to_string(), "2s");
        // 1500 µs is not an integer ms, so it stays in µs.
        assert_eq!(TimeNs::from_us(1_500).to_string(), "1500µs");
    }

    #[test]
    fn lcm_gcd_basics() {
        assert_eq!(gcd_u64(12, 18), 6);
        assert_eq!(lcm_u64(4, 6), 12);
        assert_eq!(
            TimeNs::from_ms(5).lcm(TimeNs::from_ms(15)),
            TimeNs::from_ms(15)
        );
        assert_eq!(
            TimeNs::from_ms(33).lcm(TimeNs::from_ms(15)),
            TimeNs::from_ms(165)
        );
    }

    #[test]
    #[should_panic(expected = "lcm of zero")]
    fn lcm_zero_panics() {
        let _ = lcm_u64(0, 3);
    }

    #[test]
    fn multiples_and_division() {
        let p = TimeNs::from_ms(5);
        assert!(TimeNs::from_ms(20).is_multiple_of(p));
        assert!(!TimeNs::from_ms(21).is_multiple_of(p));
        assert_eq!(TimeNs::from_ms(20) / p, 4);
        assert_eq!(TimeNs::from_ms(21) % p, TimeNs::from_ms(1));
    }

    #[test]
    fn checked_arithmetic() {
        assert_eq!(TimeNs::from_ns(3).checked_sub(TimeNs::from_ns(5)), None);
        assert_eq!(
            TimeNs::from_ns(5).checked_sub(TimeNs::from_ns(3)),
            Some(TimeNs::from_ns(2))
        );
        assert_eq!(TimeNs::MAX.checked_add(TimeNs::from_ns(1)), None);
        assert_eq!(
            TimeNs::from_ns(3).saturating_sub(TimeNs::from_ns(5)),
            TimeNs::ZERO
        );
    }

    #[test]
    fn sum_over_iterator() {
        let total: TimeNs = (1..=4).map(TimeNs::from_us).sum();
        assert_eq!(total, TimeNs::from_us(10));
    }

    #[test]
    fn div_ceil_behaviour() {
        assert_eq!(div_ceil_u64(0, 3), 0);
        assert_eq!(div_ceil_u64(1, 3), 1);
        assert_eq!(div_ceil_u64(3, 3), 1);
        assert_eq!(div_ceil_u64(4, 3), 2);
    }
}
