//! Periodic real-time tasks under partitioned scheduling (§III-A).

use crate::ids::{CoreId, TaskId};
use crate::time::TimeNs;

/// A periodic real-time task `τ_i` statically assigned to one core.
///
/// Tasks have implicit deadlines (`D_i = T_i`) and are synchronously released
/// at the system start `s_0 = 0`. The optional *data-acquisition deadline*
/// `γ_i` bounds how late any job of the task may become ready without
/// compromising schedulability; it is an input to the optimization problem
/// (Constraint 9) and is typically derived with the sensitivity procedure of
/// §VII (`γ_i = α·S_i`).
///
/// Construct tasks through [`crate::SystemBuilder::task`]; the fields are
/// read through accessors so internal representation can evolve.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Task {
    pub(crate) id: TaskId,
    pub(crate) name: String,
    pub(crate) period: TimeNs,
    pub(crate) core: CoreId,
    pub(crate) wcet: TimeNs,
    pub(crate) priority: u32,
    pub(crate) gamma: Option<TimeNs>,
}

impl Task {
    /// The identifier of this task within its system.
    #[must_use]
    pub fn id(&self) -> TaskId {
        self.id
    }

    /// Human-readable task name (unique within the system).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The period `T_i` (equal to the implicit deadline `D_i`).
    #[must_use]
    pub fn period(&self) -> TimeNs {
        self.period
    }

    /// The implicit relative deadline `D_i = T_i`.
    #[must_use]
    pub fn deadline(&self) -> TimeNs {
        self.period
    }

    /// The core `𝓟(τ_i)` this task is statically assigned to.
    #[must_use]
    pub fn core(&self) -> CoreId {
        self.core
    }

    /// Worst-case execution time `C_i` (zero when not modelled).
    #[must_use]
    pub fn wcet(&self) -> TimeNs {
        self.wcet
    }

    /// Fixed priority; **smaller values mean higher priority**.
    ///
    /// When not given explicitly, [`crate::SystemBuilder::build`] assigns
    /// rate-monotonic priorities (shorter period ⇒ higher priority, ties
    /// broken by declaration order).
    #[must_use]
    pub fn priority(&self) -> u32 {
        self.priority
    }

    /// The data-acquisition deadline `γ_i`, if one has been set.
    ///
    /// `None` means "unconstrained" (Constraint 9 is not instantiated for
    /// this task).
    #[must_use]
    pub fn acquisition_deadline(&self) -> Option<TimeNs> {
        self.gamma
    }

    /// Release instants `𝓣_i = {0, T_i, 2·T_i, …}` of this task inside
    /// `[0, horizon)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use letdma_model::{SystemBuilder, TimeNs};
    ///
    /// let mut b = SystemBuilder::new(1);
    /// let t = b.task("t").period(TimeNs::from_ms(5)).core_index(0).add()?;
    /// let sys = b.build()?;
    /// let releases: Vec<_> = sys.task(t).releases_within(TimeNs::from_ms(12)).collect();
    /// assert_eq!(releases, vec![TimeNs::ZERO, TimeNs::from_ms(5), TimeNs::from_ms(10)]);
    /// # Ok::<(), letdma_model::ModelError>(())
    /// ```
    pub fn releases_within(&self, horizon: TimeNs) -> impl Iterator<Item = TimeNs> + '_ {
        let period = self.period;
        (0..)
            .map(move |j| period * j)
            .take_while(move |&t| t < horizon)
    }
}

/// Builder for one task, returned by [`crate::SystemBuilder::task`].
///
/// Call [`TaskBuilder::add`] to finish and obtain the [`TaskId`].
#[derive(Debug)]
pub struct TaskBuilder<'a> {
    pub(crate) builder: &'a mut crate::SystemBuilder,
    pub(crate) name: String,
    pub(crate) period: Option<TimeNs>,
    pub(crate) core: Option<CoreId>,
    pub(crate) wcet: TimeNs,
    pub(crate) priority: Option<u32>,
    pub(crate) gamma: Option<TimeNs>,
}

impl TaskBuilder<'_> {
    /// Sets the period `T_i`.
    #[must_use]
    pub fn period(mut self, period: TimeNs) -> Self {
        self.period = Some(period);
        self
    }

    /// Sets the period in milliseconds (convenience).
    #[must_use]
    pub fn period_ms(self, ms: u64) -> Self {
        self.period(TimeNs::from_ms(ms))
    }

    /// Assigns the task to `core`.
    #[must_use]
    pub fn core(mut self, core: CoreId) -> Self {
        self.core = Some(core);
        self
    }

    /// Assigns the task to the core with the given dense index (convenience).
    #[must_use]
    pub fn core_index(self, index: u16) -> Self {
        self.core(CoreId::new(index))
    }

    /// Sets the worst-case execution time `C_i` (defaults to zero).
    #[must_use]
    pub fn wcet(mut self, wcet: TimeNs) -> Self {
        self.wcet = wcet;
        self
    }

    /// Sets the worst-case execution time in microseconds (convenience).
    #[must_use]
    pub fn wcet_us(self, us: u64) -> Self {
        self.wcet(TimeNs::from_us(us))
    }

    /// Sets an explicit fixed priority (smaller = higher). When omitted,
    /// rate-monotonic priorities are assigned at build time.
    #[must_use]
    pub fn priority(mut self, priority: u32) -> Self {
        self.priority = Some(priority);
        self
    }

    /// Sets the data-acquisition deadline `γ_i`.
    #[must_use]
    pub fn acquisition_deadline(mut self, gamma: TimeNs) -> Self {
        self.gamma = Some(gamma);
        self
    }

    /// Registers the task with the system builder and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`crate::ModelError`] when the period is missing/zero, the
    /// core is missing or not on the platform, or the name is duplicated.
    pub fn add(self) -> Result<TaskId, crate::ModelError> {
        let period = self.period.ok_or_else(|| {
            crate::ModelError::InvalidParameter(format!("task `{}` has no period", self.name))
        })?;
        if period == TimeNs::ZERO {
            return Err(crate::ModelError::InvalidParameter(format!(
                "task `{}` has a zero period",
                self.name
            )));
        }
        let core = self.core.ok_or_else(|| {
            crate::ModelError::InvalidParameter(format!(
                "task `{}` is not mapped to any core",
                self.name
            ))
        })?;
        self.builder.push_task(
            Task {
                id: TaskId::new(0), // replaced by push_task
                name: self.name,
                period,
                core,
                wcet: self.wcet,
                priority: self.priority.unwrap_or(u32::MAX),
                gamma: self.gamma,
            },
            self.priority.is_some(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SystemBuilder;

    #[test]
    fn builder_rejects_missing_period() {
        let mut b = SystemBuilder::new(1);
        let err = b.task("x").core_index(0).add().unwrap_err();
        assert!(matches!(err, crate::ModelError::InvalidParameter(_)));
    }

    #[test]
    fn builder_rejects_zero_period() {
        let mut b = SystemBuilder::new(1);
        let err = b
            .task("x")
            .period(TimeNs::ZERO)
            .core_index(0)
            .add()
            .unwrap_err();
        assert!(matches!(err, crate::ModelError::InvalidParameter(_)));
    }

    #[test]
    fn builder_rejects_unknown_core() {
        let mut b = SystemBuilder::new(1);
        let err = b.task("x").period_ms(1).core_index(3).add().unwrap_err();
        assert_eq!(err, crate::ModelError::UnknownCore(CoreId::new(3)));
    }

    #[test]
    fn builder_rejects_duplicate_name() {
        let mut b = SystemBuilder::new(1);
        b.task("x").period_ms(1).core_index(0).add().unwrap();
        let err = b.task("x").period_ms(2).core_index(0).add().unwrap_err();
        assert_eq!(err, crate::ModelError::DuplicateName("x".into()));
    }

    #[test]
    fn task_accessors_roundtrip() {
        let mut b = SystemBuilder::new(2);
        let id = b
            .task("ekf")
            .period_ms(15)
            .core_index(1)
            .wcet_us(500)
            .priority(3)
            .acquisition_deadline(TimeNs::from_us(100))
            .add()
            .unwrap();
        let sys = b.build().unwrap();
        let t = sys.task(id);
        assert_eq!(t.name(), "ekf");
        assert_eq!(t.period(), TimeNs::from_ms(15));
        assert_eq!(t.deadline(), t.period());
        assert_eq!(t.core(), CoreId::new(1));
        assert_eq!(t.wcet(), TimeNs::from_us(500));
        assert_eq!(t.priority(), 3);
        assert_eq!(t.acquisition_deadline(), Some(TimeNs::from_us(100)));
    }

    #[test]
    fn rate_monotonic_priorities_assigned_when_unspecified() {
        let mut b = SystemBuilder::new(1);
        let slow = b.task("slow").period_ms(100).core_index(0).add().unwrap();
        let fast = b.task("fast").period_ms(5).core_index(0).add().unwrap();
        let mid = b.task("mid").period_ms(50).core_index(0).add().unwrap();
        let sys = b.build().unwrap();
        assert!(sys.task(fast).priority() < sys.task(mid).priority());
        assert!(sys.task(mid).priority() < sys.task(slow).priority());
    }

    #[test]
    fn releases_within_horizon() {
        let mut b = SystemBuilder::new(1);
        let t = b.task("t").period_ms(10).core_index(0).add().unwrap();
        let sys = b.build().unwrap();
        let r: Vec<_> = sys.task(t).releases_within(TimeNs::from_ms(30)).collect();
        assert_eq!(r.len(), 3);
        assert_eq!(r[2], TimeNs::from_ms(20));
    }
}
