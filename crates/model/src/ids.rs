//! Strongly-typed identifiers for cores, tasks, labels and memories.
//!
//! Every entity in a [`crate::System`] is referred to through one of these
//! newtypes so that, e.g., a task index can never be accidentally used where a
//! label index is expected (C-NEWTYPE).

use std::fmt;

/// Identifier of a processor core `P_k`.
///
/// Cores are numbered densely from `0` in the order they were declared on the
/// [`crate::Platform`].
///
/// # Examples
///
/// ```
/// use letdma_model::CoreId;
///
/// let core = CoreId::new(1);
/// assert_eq!(core.index(), 1);
/// assert_eq!(core.to_string(), "P1");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CoreId(u16);

impl CoreId {
    /// Creates a core identifier from a dense index.
    #[must_use]
    pub const fn new(index: u16) -> Self {
        Self(index)
    }

    /// Returns the dense index of this core.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Identifier of a periodic task `τ_i`.
///
/// Tasks are numbered densely from `0` in declaration order on the
/// [`crate::SystemBuilder`].
///
/// # Examples
///
/// ```
/// use letdma_model::TaskId;
///
/// let task = TaskId::new(3);
/// assert_eq!(task.index(), 3);
/// assert_eq!(task.to_string(), "τ3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TaskId(u32);

impl TaskId {
    /// Creates a task identifier from a dense index.
    #[must_use]
    pub const fn new(index: u32) -> Self {
        Self(index)
    }

    /// Returns the dense index of this task.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "τ{}", self.0)
    }
}

/// Identifier of a memory slot's logical label `ℓ_l`.
///
/// Labels are numbered densely from `0` in declaration order on the
/// [`crate::SystemBuilder`].
///
/// # Examples
///
/// ```
/// use letdma_model::LabelId;
///
/// let label = LabelId::new(7);
/// assert_eq!(label.index(), 7);
/// assert_eq!(label.to_string(), "ℓ7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LabelId(u32);

impl LabelId {
    /// Creates a label identifier from a dense index.
    #[must_use]
    pub const fn new(index: u32) -> Self {
        Self(index)
    }

    /// Returns the dense index of this label.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LabelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ℓ{}", self.0)
    }
}

/// Identifier of a memory `M ∈ 𝓜 = {M_1, …, M_N, M_G}`.
///
/// Each core has one private dual-ported local memory; all cores share one
/// global memory. The DMA engine copies between a local memory and the global
/// memory (§III-A of the paper).
///
/// # Examples
///
/// ```
/// use letdma_model::{CoreId, MemoryId};
///
/// let local = MemoryId::local(CoreId::new(0));
/// assert!(local.is_local());
/// assert!(!MemoryId::Global.is_local());
/// assert_eq!(local.to_string(), "M0");
/// assert_eq!(MemoryId::Global.to_string(), "MG");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum MemoryId {
    /// The private scratchpad of one core.
    Local(CoreId),
    /// The memory shared by all cores, `M_G`.
    Global,
}

impl MemoryId {
    /// Creates the identifier of the local memory of `core`.
    #[must_use]
    pub const fn local(core: CoreId) -> Self {
        Self::Local(core)
    }

    /// Returns `true` when this is a core-local memory.
    #[must_use]
    pub const fn is_local(self) -> bool {
        matches!(self, Self::Local(_))
    }

    /// Returns the owning core for a local memory, or `None` for `M_G`.
    #[must_use]
    pub const fn core(self) -> Option<CoreId> {
        match self {
            Self::Local(c) => Some(c),
            Self::Global => None,
        }
    }
}

impl fmt::Display for MemoryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Local(c) => write!(f, "M{}", c.index()),
            Self::Global => write!(f, "MG"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_id_roundtrip() {
        let c = CoreId::new(5);
        assert_eq!(c.index(), 5);
        assert_eq!(CoreId::new(5), c);
        assert!(CoreId::new(4) < c);
    }

    #[test]
    fn task_and_label_display() {
        assert_eq!(TaskId::new(0).to_string(), "τ0");
        assert_eq!(LabelId::new(12).to_string(), "ℓ12");
    }

    #[test]
    fn memory_id_core_extraction() {
        assert_eq!(MemoryId::local(CoreId::new(2)).core(), Some(CoreId::new(2)));
        assert_eq!(MemoryId::Global.core(), None);
    }

    #[test]
    fn memory_id_ordering_is_stable() {
        // Locals sort before Global, locals sort by core.
        let mut v = vec![
            MemoryId::Global,
            MemoryId::local(CoreId::new(1)),
            MemoryId::local(CoreId::new(0)),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                MemoryId::local(CoreId::new(0)),
                MemoryId::local(CoreId::new(1)),
                MemoryId::Global,
            ]
        );
    }
}
