//! Hardware platform model: identical cores, dual-ported local memories, one
//! global memory, and a single DMA engine (§III-A of the paper).

use std::fmt;

use crate::ids::{CoreId, MemoryId};
use crate::time::TimeNs;

/// The multicore platform `𝓟 = {P_1, …, P_N}` plus its memories `𝓜`.
///
/// Each core `P_k` owns a private dual-ported local memory `M_k` (a
/// scratchpad); the platform additionally has one global memory `M_G` shared
/// by all cores, and a single DMA engine that moves data between a local
/// memory and the global memory. This mirrors commercial automotive parts such
/// as the Infineon AURIX TC2xx/TC3xx.
///
/// # Examples
///
/// ```
/// use letdma_model::Platform;
///
/// let platform = Platform::new(2);
/// assert_eq!(platform.core_count(), 2);
/// assert_eq!(platform.memories().count(), 3); // M0, M1, MG
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Platform {
    core_count: u16,
    cluster_count: u16,
}

impl Platform {
    /// Creates a platform with `core_count` identical cores and a single
    /// DMA cluster (the paper's topology: one shared DMA engine).
    ///
    /// # Panics
    ///
    /// Panics if `core_count == 0`.
    #[must_use]
    pub fn new(core_count: u16) -> Self {
        assert!(core_count > 0, "a platform needs at least one core");
        Self {
            core_count,
            cluster_count: 1,
        }
    }

    /// Creates a platform whose cores are partitioned into `cluster_count`
    /// contiguous blocks, each served by its own DMA engine (XDMA-style
    /// multi-accelerator SoCs). Cluster `j` owns cores
    /// `j·⌈N/C⌉ .. (j+1)·⌈N/C⌉`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::ModelError::ClusterConfig`] if `cluster_count` is
    /// zero or exceeds `core_count`, or if `core_count == 0`.
    pub fn with_clusters(core_count: u16, cluster_count: u16) -> Result<Self, crate::ModelError> {
        if core_count == 0 {
            return Err(crate::ModelError::ClusterConfig(
                "a platform needs at least one core".into(),
            ));
        }
        if cluster_count == 0 || cluster_count > core_count {
            return Err(crate::ModelError::ClusterConfig(format!(
                "cluster count {cluster_count} must be in 1..={core_count} (one DMA engine per non-empty core block)"
            )));
        }
        Ok(Self {
            core_count,
            cluster_count,
        })
    }

    /// Number of DMA clusters `C` (1 on the paper's single-engine platform).
    #[must_use]
    pub fn cluster_count(&self) -> usize {
        usize::from(self.cluster_count)
    }

    /// The cluster that owns `core` (contiguous block partition).
    ///
    /// # Panics
    ///
    /// Panics if `core` does not exist on this platform.
    #[must_use]
    pub fn cluster_of(&self, core: CoreId) -> usize {
        assert!(self.contains_core(core), "core {core} not on this platform");
        let per = self.core_count().div_ceil(self.cluster_count());
        core.index() / per
    }

    /// Number of cores `N`.
    #[must_use]
    pub fn core_count(&self) -> usize {
        usize::from(self.core_count)
    }

    /// Iterates over all core identifiers `P_0, …, P_{N-1}`.
    pub fn cores(&self) -> impl Iterator<Item = CoreId> + '_ {
        (0..self.core_count).map(CoreId::new)
    }

    /// Iterates over all memories: every local memory followed by `M_G`.
    pub fn memories(&self) -> impl Iterator<Item = MemoryId> + '_ {
        self.cores()
            .map(MemoryId::local)
            .chain(std::iter::once(MemoryId::Global))
    }

    /// Returns `true` if `core` exists on this platform.
    #[must_use]
    pub fn contains_core(&self, core: CoreId) -> bool {
        core.index() < self.core_count()
    }
}

/// Per-byte copy cost expressed as an exact rational number of nanoseconds.
///
/// The DMA copy cost `ω_c` of the paper multiplies the number of copied bytes;
/// real transfer rates (e.g. 200 MB/s ⇒ 5 ns/B) are not always integer
/// nanoseconds per byte, so the cost is stored as `num/den` ns per byte and
/// evaluated with ceiling rounding (worst case).
///
/// # Examples
///
/// ```
/// use letdma_model::CopyCost;
///
/// let cost = CopyCost::from_rate_mib_per_s(200)?;
/// // ~5 ns per byte at 200 MiB/s (binary mebibytes):
/// assert_eq!(cost.cost_of(1).as_ns(), 5);
/// # Ok::<(), letdma_model::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CopyCost {
    /// Numerator of the ns-per-byte rational.
    num: u64,
    /// Denominator of the ns-per-byte rational.
    den: u64,
}

impl CopyCost {
    /// A zero copy cost (useful to isolate programming overheads in tests).
    pub const ZERO: Self = Self { num: 0, den: 1 };

    /// Creates a cost of exactly `num/den` nanoseconds per byte.
    ///
    /// # Errors
    ///
    /// Returns [`crate::ModelError::InvalidParameter`] if `den == 0`.
    pub fn per_byte(num: u64, den: u64) -> Result<Self, crate::ModelError> {
        if den == 0 {
            return Err(crate::ModelError::InvalidParameter(
                "copy cost denominator must be nonzero".into(),
            ));
        }
        let g = crate::time::gcd_u64(num.max(1), den).max(1);
        // Keep exactness, just reduce the fraction (gcd of (0, den) is den).
        if num == 0 {
            return Ok(Self { num: 0, den: 1 });
        }
        Ok(Self {
            num: num / g,
            den: den / g,
        })
    }

    /// Creates a cost from a transfer rate in MiB/s (2^20 bytes per second).
    ///
    /// # Errors
    ///
    /// Returns [`crate::ModelError::InvalidParameter`] if `mib_per_s == 0`.
    pub fn from_rate_mib_per_s(mib_per_s: u64) -> Result<Self, crate::ModelError> {
        if mib_per_s == 0 {
            return Err(crate::ModelError::InvalidParameter(
                "transfer rate must be nonzero".into(),
            ));
        }
        // ns per byte = 1e9 / (mib_per_s * 2^20)
        Self::per_byte(1_000_000_000, mib_per_s * (1 << 20))
    }

    /// Worst-case (ceiling-rounded) time to copy `bytes` bytes.
    #[must_use]
    pub fn cost_of(self, bytes: u64) -> TimeNs {
        if self.num == 0 {
            return TimeNs::ZERO;
        }
        let total = u128::from(bytes) * u128::from(self.num);
        let den = u128::from(self.den);
        let ns = total.div_ceil(den);
        TimeNs::from_ns(u64::try_from(ns).expect("copy cost overflow"))
    }

    /// The exact ns-per-byte rational as `(numerator, denominator)`.
    #[must_use]
    pub const fn as_ratio(self) -> (u64, u64) {
        (self.num, self.den)
    }

    /// `true` when this per-byte cost is at least as large as `other`
    /// (exact rational comparison, no rounding).
    #[must_use]
    pub fn dominates(self, other: Self) -> bool {
        u128::from(self.num) * u128::from(other.den) >= u128::from(other.num) * u128::from(self.den)
    }
}

impl fmt::Display for CopyCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}ns/B", self.num)
        } else {
            write!(f, "{}/{}ns/B", self.num, self.den)
        }
    }
}

/// Timing parameters of DMA-driven LET communication (§V of the paper).
///
/// * `o_dp`  — worst-case time for a LET task to program one DMA transfer,
/// * `o_isr` — worst-case duration of the DMA-completion interrupt service
///   routine,
/// * `omega_c` — per-byte copy cost of the DMA engine.
///
/// The per-transfer overhead `λ_O = o_DP + o_ISR` of Constraint 9 is exposed
/// as [`CostModel::lambda_o`].
///
/// # Examples
///
/// ```
/// use letdma_model::{CopyCost, CostModel, TimeNs};
///
/// // The parameters used in §VII of the paper.
/// let costs = CostModel::new(
///     TimeNs::from_ns(3_360),
///     TimeNs::from_us(10),
///     CopyCost::per_byte(5, 1)?,
/// );
/// assert_eq!(costs.lambda_o(), TimeNs::from_ns(13_360));
/// assert_eq!(costs.transfer_duration(1_000), TimeNs::from_ns(13_360 + 5_000));
/// # Ok::<(), letdma_model::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CostModel {
    o_dp: TimeNs,
    o_isr: TimeNs,
    omega_c: CopyCost,
}

impl CostModel {
    /// Creates a cost model from its three parameters.
    #[must_use]
    pub const fn new(o_dp: TimeNs, o_isr: TimeNs, omega_c: CopyCost) -> Self {
        Self {
            o_dp,
            o_isr,
            omega_c,
        }
    }

    /// The cost model used in the paper's evaluation (§VII):
    /// `o_DP = 3.36 µs` (measured in \[8\]), `o_ISR = 10 µs`, and a DMA copy
    /// rate of 200 MB/s (5 ns per byte).
    #[must_use]
    pub fn paper_section_vii() -> Self {
        Self::new(
            TimeNs::from_ns(3_360),
            TimeNs::from_us(10),
            CopyCost { num: 5, den: 1 },
        )
    }

    /// Worst-case DMA programming time `o_DP`.
    #[must_use]
    pub const fn o_dp(&self) -> TimeNs {
        self.o_dp
    }

    /// Worst-case completion-ISR duration `o_ISR`.
    #[must_use]
    pub const fn o_isr(&self) -> TimeNs {
        self.o_isr
    }

    /// Per-byte DMA copy cost `ω_c`.
    #[must_use]
    pub const fn omega_c(&self) -> CopyCost {
        self.omega_c
    }

    /// Per-transfer overhead `λ_O = o_DP + o_ISR` (Constraint 9).
    #[must_use]
    pub fn lambda_o(&self) -> TimeNs {
        self.o_dp + self.o_isr
    }

    /// Worst-case duration of a single DMA transfer moving `bytes` bytes,
    /// including programming and completion-interrupt overheads.
    #[must_use]
    pub fn transfer_duration(&self, bytes: u64) -> TimeNs {
        self.lambda_o() + self.omega_c.cost_of(bytes)
    }

    /// `true` when every component of this model is at least as large as
    /// the corresponding component of `other` — i.e. this model is a sound
    /// worst-case envelope for `other`. The analysis and the MILP always
    /// use the system-level envelope; per-cluster engines may only be
    /// *faster*, so timing guarantees proved against the envelope carry
    /// over to every cluster.
    #[must_use]
    pub fn dominates(&self, other: &Self) -> bool {
        self.o_dp >= other.o_dp
            && self.o_isr >= other.o_isr
            && self.omega_c.dominates(other.omega_c)
    }
}

impl Default for CostModel {
    /// Defaults to the paper's §VII parameters.
    fn default() -> Self {
        Self::paper_section_vii()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platform_memories_enumeration() {
        let p = Platform::new(3);
        let mems: Vec<_> = p.memories().collect();
        assert_eq!(mems.len(), 4);
        assert_eq!(mems[3], MemoryId::Global);
        assert!(p.contains_core(CoreId::new(2)));
        assert!(!p.contains_core(CoreId::new(3)));
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_core_platform_panics() {
        let _ = Platform::new(0);
    }

    #[test]
    fn single_cluster_by_default() {
        let p = Platform::new(4);
        assert_eq!(p.cluster_count(), 1);
        for core in p.cores() {
            assert_eq!(p.cluster_of(core), 0);
        }
    }

    #[test]
    fn cluster_block_partition() {
        // 5 cores in 2 clusters: blocks of ⌈5/2⌉ = 3 → {0,1,2}, {3,4}.
        let p = Platform::with_clusters(5, 2).unwrap();
        assert_eq!(p.cluster_count(), 2);
        let clusters: Vec<usize> = p.cores().map(|c| p.cluster_of(c)).collect();
        assert_eq!(clusters, vec![0, 0, 0, 1, 1]);
    }

    #[test]
    fn cluster_config_rejected() {
        assert!(Platform::with_clusters(0, 1).is_err());
        assert!(Platform::with_clusters(4, 0).is_err());
        assert!(Platform::with_clusters(2, 3).is_err());
        assert!(Platform::with_clusters(2, 2).is_ok());
    }

    #[test]
    fn copy_cost_rounds_up() {
        // 1/3 ns per byte: 10 bytes -> ceil(10/3) = 4 ns.
        let c = CopyCost::per_byte(1, 3).unwrap();
        assert_eq!(c.cost_of(10), TimeNs::from_ns(4));
        assert_eq!(c.cost_of(0), TimeNs::ZERO);
    }

    #[test]
    fn copy_cost_reduces_fraction() {
        let c = CopyCost::per_byte(10, 4).unwrap();
        assert_eq!(c.as_ratio(), (5, 2));
        assert_eq!(CopyCost::per_byte(0, 7).unwrap().as_ratio(), (0, 1));
    }

    #[test]
    fn copy_cost_rejects_zero_denominator() {
        assert!(CopyCost::per_byte(1, 0).is_err());
        assert!(CopyCost::from_rate_mib_per_s(0).is_err());
    }

    #[test]
    fn copy_cost_from_rate() {
        // 1 GiB/s => slightly under 1 ns/B; 2^30 bytes take 1e9 ns.
        let c = CopyCost::from_rate_mib_per_s(1024).unwrap();
        assert_eq!(c.cost_of(1 << 30), TimeNs::from_s(1));
    }

    #[test]
    fn cost_model_paper_values() {
        let m = CostModel::paper_section_vii();
        assert_eq!(m.o_dp(), TimeNs::from_ns(3_360));
        assert_eq!(m.o_isr(), TimeNs::from_us(10));
        assert_eq!(m.lambda_o(), TimeNs::from_ns(13_360));
        // 1 KiB at 5 ns/B = 5120 ns on top of λ_O.
        assert_eq!(
            m.transfer_duration(1024),
            TimeNs::from_ns(13_360 + 5 * 1024)
        );
    }

    #[test]
    fn zero_copy_cost_isolates_overheads() {
        let m = CostModel::new(TimeNs::from_us(1), TimeNs::from_us(2), CopyCost::ZERO);
        assert_eq!(m.transfer_duration(1 << 20), TimeNs::from_us(3));
    }

    #[test]
    fn copy_cost_dominance_is_exact() {
        let a = CopyCost::per_byte(5, 1).unwrap();
        let b = CopyCost::per_byte(9, 2).unwrap(); // 4.5 ns/B
        assert!(a.dominates(b));
        assert!(!b.dominates(a));
        assert!(a.dominates(a));
        assert!(b.dominates(CopyCost::ZERO));
    }

    #[test]
    fn cost_model_dominance_is_componentwise() {
        let envelope = CostModel::paper_section_vii();
        let faster = CostModel::new(
            TimeNs::from_ns(3_000),
            TimeNs::from_us(9),
            CopyCost::per_byte(4, 1).unwrap(),
        );
        assert!(envelope.dominates(&faster));
        assert!(!faster.dominates(&envelope));
        // One larger component breaks dominance.
        let slower_isr = CostModel::new(
            TimeNs::from_ns(3_000),
            TimeNs::from_us(11),
            CopyCost::per_byte(4, 1).unwrap(),
        );
        assert!(!envelope.dominates(&slower_isr));
    }
}
