//! Error types for model construction and validation.

use std::error::Error;
use std::fmt;

use crate::ids::{CoreId, LabelId, TaskId};

/// Error produced while building or validating a [`crate::System`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// A numeric parameter was out of range (zero period, zero size, …).
    InvalidParameter(String),
    /// Two tasks or two labels were declared with the same name.
    DuplicateName(String),
    /// A task was mapped to a core that does not exist on the platform.
    UnknownCore(CoreId),
    /// A task id does not belong to the system being built.
    UnknownTask(TaskId),
    /// A label id does not belong to the system being built.
    UnknownLabel(LabelId),
    /// A task both writes and reads the same label.
    SelfCommunication {
        /// The task in question.
        task: TaskId,
        /// The label it both writes and reads.
        label: LabelId,
    },
    /// The same reader was listed twice on one label.
    DuplicateReader {
        /// The duplicated reader.
        task: TaskId,
        /// The label with the duplicated reader.
        label: LabelId,
    },
    /// The system has no tasks.
    EmptySystem,
    /// The DMA-cluster configuration is inconsistent: bad cluster count, a
    /// per-cluster cost-model list of the wrong length, or a cluster engine
    /// that the system-level worst-case envelope does not dominate.
    ClusterConfig(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            Self::DuplicateName(name) => write!(f, "duplicate name `{name}`"),
            Self::UnknownCore(core) => write!(f, "core {core} does not exist on the platform"),
            Self::UnknownTask(task) => write!(f, "task {task} does not belong to this system"),
            Self::UnknownLabel(label) => write!(f, "label {label} does not belong to this system"),
            Self::SelfCommunication { task, label } => {
                write!(f, "task {task} both writes and reads label {label}")
            }
            Self::DuplicateReader { task, label } => {
                write!(f, "task {task} listed twice as reader of label {label}")
            }
            Self::EmptySystem => write!(f, "the system declares no tasks"),
            Self::ClusterConfig(msg) => write!(f, "invalid DMA cluster configuration: {msg}"),
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_without_trailing_punctuation() {
        let messages = [
            ModelError::InvalidParameter("x".into()).to_string(),
            ModelError::DuplicateName("a".into()).to_string(),
            ModelError::UnknownCore(CoreId::new(7)).to_string(),
            ModelError::EmptySystem.to_string(),
        ];
        for m in messages {
            assert!(!m.ends_with('.'), "no trailing period: {m}");
            assert!(m.chars().next().unwrap().is_lowercase(), "lowercase: {m}");
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelError>();
    }
}
