/root/repo/target/debug/examples/quickstart-5166737d6ccadba2.d: crates/letdma/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-5166737d6ccadba2: crates/letdma/../../examples/quickstart.rs

crates/letdma/../../examples/quickstart.rs:
