/root/repo/target/debug/examples/waters_case_study-f01eb08ef60d716f.d: crates/letdma/../../examples/waters_case_study.rs

/root/repo/target/debug/examples/waters_case_study-f01eb08ef60d716f: crates/letdma/../../examples/waters_case_study.rs

crates/letdma/../../examples/waters_case_study.rs:
