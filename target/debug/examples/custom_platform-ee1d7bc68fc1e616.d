/root/repo/target/debug/examples/custom_platform-ee1d7bc68fc1e616.d: crates/letdma/../../examples/custom_platform.rs Cargo.toml

/root/repo/target/debug/examples/libcustom_platform-ee1d7bc68fc1e616.rmeta: crates/letdma/../../examples/custom_platform.rs Cargo.toml

crates/letdma/../../examples/custom_platform.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
