/root/repo/target/debug/examples/fig1_walkthrough-58215e8f8af27f5d.d: crates/letdma/../../examples/fig1_walkthrough.rs

/root/repo/target/debug/examples/fig1_walkthrough-58215e8f8af27f5d: crates/letdma/../../examples/fig1_walkthrough.rs

crates/letdma/../../examples/fig1_walkthrough.rs:
