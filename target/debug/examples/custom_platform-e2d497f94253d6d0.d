/root/repo/target/debug/examples/custom_platform-e2d497f94253d6d0.d: crates/letdma/../../examples/custom_platform.rs

/root/repo/target/debug/examples/custom_platform-e2d497f94253d6d0: crates/letdma/../../examples/custom_platform.rs

crates/letdma/../../examples/custom_platform.rs:
