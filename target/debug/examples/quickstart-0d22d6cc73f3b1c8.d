/root/repo/target/debug/examples/quickstart-0d22d6cc73f3b1c8.d: crates/letdma/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-0d22d6cc73f3b1c8.rmeta: crates/letdma/../../examples/quickstart.rs Cargo.toml

crates/letdma/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
