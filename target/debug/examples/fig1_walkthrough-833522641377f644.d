/root/repo/target/debug/examples/fig1_walkthrough-833522641377f644.d: crates/letdma/../../examples/fig1_walkthrough.rs Cargo.toml

/root/repo/target/debug/examples/libfig1_walkthrough-833522641377f644.rmeta: crates/letdma/../../examples/fig1_walkthrough.rs Cargo.toml

crates/letdma/../../examples/fig1_walkthrough.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
