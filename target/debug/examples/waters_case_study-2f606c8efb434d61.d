/root/repo/target/debug/examples/waters_case_study-2f606c8efb434d61.d: crates/letdma/../../examples/waters_case_study.rs Cargo.toml

/root/repo/target/debug/examples/libwaters_case_study-2f606c8efb434d61.rmeta: crates/letdma/../../examples/waters_case_study.rs Cargo.toml

crates/letdma/../../examples/waters_case_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
