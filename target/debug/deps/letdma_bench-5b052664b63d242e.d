/root/repo/target/debug/deps/letdma_bench-5b052664b63d242e.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/json.rs crates/bench/src/milp_bench.rs

/root/repo/target/debug/deps/libletdma_bench-5b052664b63d242e.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/json.rs crates/bench/src/milp_bench.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/json.rs:
crates/bench/src/milp_bench.rs:
