/root/repo/target/debug/deps/letdma_bench-5b052664b63d242e.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libletdma_bench-5b052664b63d242e.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
