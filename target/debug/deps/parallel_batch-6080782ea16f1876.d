/root/repo/target/debug/deps/parallel_batch-6080782ea16f1876.d: crates/letdma/../../tests/parallel_batch.rs

/root/repo/target/debug/deps/parallel_batch-6080782ea16f1876: crates/letdma/../../tests/parallel_batch.rs

crates/letdma/../../tests/parallel_batch.rs:
