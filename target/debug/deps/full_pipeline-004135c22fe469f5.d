/root/repo/target/debug/deps/full_pipeline-004135c22fe469f5.d: crates/letdma/../../tests/full_pipeline.rs

/root/repo/target/debug/deps/full_pipeline-004135c22fe469f5: crates/letdma/../../tests/full_pipeline.rs

crates/letdma/../../tests/full_pipeline.rs:
