/root/repo/target/debug/deps/letdma_bench-153bf460b73e0f29.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/json.rs crates/bench/src/milp_bench.rs Cargo.toml

/root/repo/target/debug/deps/libletdma_bench-153bf460b73e0f29.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/json.rs crates/bench/src/milp_bench.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/json.rs:
crates/bench/src/milp_bench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
