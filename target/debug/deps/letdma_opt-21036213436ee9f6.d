/root/repo/target/debug/deps/letdma_opt-21036213436ee9f6.d: crates/opt/src/lib.rs crates/opt/src/batch.rs crates/opt/src/config.rs crates/opt/src/formulation.rs crates/opt/src/heuristic.rs crates/opt/src/improve.rs crates/opt/src/optimizer.rs crates/opt/src/solution.rs

/root/repo/target/debug/deps/letdma_opt-21036213436ee9f6: crates/opt/src/lib.rs crates/opt/src/batch.rs crates/opt/src/config.rs crates/opt/src/formulation.rs crates/opt/src/heuristic.rs crates/opt/src/improve.rs crates/opt/src/optimizer.rs crates/opt/src/solution.rs

crates/opt/src/lib.rs:
crates/opt/src/batch.rs:
crates/opt/src/config.rs:
crates/opt/src/formulation.rs:
crates/opt/src/heuristic.rs:
crates/opt/src/improve.rs:
crates/opt/src/optimizer.rs:
crates/opt/src/solution.rs:
