/root/repo/target/debug/deps/letdma_sim-534d446029ea6357.d: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/report.rs Cargo.toml

/root/repo/target/debug/deps/libletdma_sim-534d446029ea6357.rmeta: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/report.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/config.rs:
crates/sim/src/engine.rs:
crates/sim/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
