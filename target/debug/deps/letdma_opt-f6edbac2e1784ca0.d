/root/repo/target/debug/deps/letdma_opt-f6edbac2e1784ca0.d: crates/opt/src/lib.rs crates/opt/src/batch.rs crates/opt/src/config.rs crates/opt/src/formulation.rs crates/opt/src/heuristic.rs crates/opt/src/improve.rs crates/opt/src/optimizer.rs crates/opt/src/solution.rs

/root/repo/target/debug/deps/libletdma_opt-f6edbac2e1784ca0.rlib: crates/opt/src/lib.rs crates/opt/src/batch.rs crates/opt/src/config.rs crates/opt/src/formulation.rs crates/opt/src/heuristic.rs crates/opt/src/improve.rs crates/opt/src/optimizer.rs crates/opt/src/solution.rs

/root/repo/target/debug/deps/libletdma_opt-f6edbac2e1784ca0.rmeta: crates/opt/src/lib.rs crates/opt/src/batch.rs crates/opt/src/config.rs crates/opt/src/formulation.rs crates/opt/src/heuristic.rs crates/opt/src/improve.rs crates/opt/src/optimizer.rs crates/opt/src/solution.rs

crates/opt/src/lib.rs:
crates/opt/src/batch.rs:
crates/opt/src/config.rs:
crates/opt/src/formulation.rs:
crates/opt/src/heuristic.rs:
crates/opt/src/improve.rs:
crates/opt/src/optimizer.rs:
crates/opt/src/solution.rs:
