/root/repo/target/debug/deps/cross_crate_consistency-6fe1c626ad185dff.d: crates/letdma/../../tests/cross_crate_consistency.rs

/root/repo/target/debug/deps/cross_crate_consistency-6fe1c626ad185dff: crates/letdma/../../tests/cross_crate_consistency.rs

crates/letdma/../../tests/cross_crate_consistency.rs:
