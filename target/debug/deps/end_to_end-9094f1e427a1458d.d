/root/repo/target/debug/deps/end_to_end-9094f1e427a1458d.d: crates/opt/tests/end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end-9094f1e427a1458d.rmeta: crates/opt/tests/end_to_end.rs Cargo.toml

crates/opt/tests/end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
