/root/repo/target/debug/deps/letdma_core-54327dad9bb3b021.d: crates/core/src/lib.rs crates/core/src/cases.rs crates/core/src/instrument.rs crates/core/src/parallel.rs crates/core/src/rng.rs

/root/repo/target/debug/deps/libletdma_core-54327dad9bb3b021.rlib: crates/core/src/lib.rs crates/core/src/cases.rs crates/core/src/instrument.rs crates/core/src/parallel.rs crates/core/src/rng.rs

/root/repo/target/debug/deps/libletdma_core-54327dad9bb3b021.rmeta: crates/core/src/lib.rs crates/core/src/cases.rs crates/core/src/instrument.rs crates/core/src/parallel.rs crates/core/src/rng.rs

crates/core/src/lib.rs:
crates/core/src/cases.rs:
crates/core/src/instrument.rs:
crates/core/src/parallel.rs:
crates/core/src/rng.rs:
