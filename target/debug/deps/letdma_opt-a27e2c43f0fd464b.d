/root/repo/target/debug/deps/letdma_opt-a27e2c43f0fd464b.d: crates/opt/src/lib.rs crates/opt/src/batch.rs crates/opt/src/config.rs crates/opt/src/formulation.rs crates/opt/src/heuristic.rs crates/opt/src/improve.rs crates/opt/src/optimizer.rs crates/opt/src/solution.rs Cargo.toml

/root/repo/target/debug/deps/libletdma_opt-a27e2c43f0fd464b.rmeta: crates/opt/src/lib.rs crates/opt/src/batch.rs crates/opt/src/config.rs crates/opt/src/formulation.rs crates/opt/src/heuristic.rs crates/opt/src/improve.rs crates/opt/src/optimizer.rs crates/opt/src/solution.rs Cargo.toml

crates/opt/src/lib.rs:
crates/opt/src/batch.rs:
crates/opt/src/config.rs:
crates/opt/src/formulation.rs:
crates/opt/src/heuristic.rs:
crates/opt/src/improve.rs:
crates/opt/src/optimizer.rs:
crates/opt/src/solution.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
