/root/repo/target/debug/deps/full_pipeline-0193896dcffd4f92.d: crates/letdma/../../tests/full_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libfull_pipeline-0193896dcffd4f92.rmeta: crates/letdma/../../tests/full_pipeline.rs Cargo.toml

crates/letdma/../../tests/full_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
