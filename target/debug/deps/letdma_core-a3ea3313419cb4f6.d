/root/repo/target/debug/deps/letdma_core-a3ea3313419cb4f6.d: crates/core/src/lib.rs crates/core/src/cases.rs crates/core/src/instrument.rs crates/core/src/parallel.rs crates/core/src/rng.rs

/root/repo/target/debug/deps/letdma_core-a3ea3313419cb4f6: crates/core/src/lib.rs crates/core/src/cases.rs crates/core/src/instrument.rs crates/core/src/parallel.rs crates/core/src/rng.rs

crates/core/src/lib.rs:
crates/core/src/cases.rs:
crates/core/src/instrument.rs:
crates/core/src/parallel.rs:
crates/core/src/rng.rs:
