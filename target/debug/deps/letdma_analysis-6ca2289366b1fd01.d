/root/repo/target/debug/deps/letdma_analysis-6ca2289366b1fd01.d: crates/analysis/src/lib.rs crates/analysis/src/holistic.rs crates/analysis/src/interference.rs crates/analysis/src/rta.rs crates/analysis/src/sensitivity.rs Cargo.toml

/root/repo/target/debug/deps/libletdma_analysis-6ca2289366b1fd01.rmeta: crates/analysis/src/lib.rs crates/analysis/src/holistic.rs crates/analysis/src/interference.rs crates/analysis/src/rta.rs crates/analysis/src/sensitivity.rs Cargo.toml

crates/analysis/src/lib.rs:
crates/analysis/src/holistic.rs:
crates/analysis/src/interference.rs:
crates/analysis/src/rta.rs:
crates/analysis/src/sensitivity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
