/root/repo/target/debug/deps/letdma-f09ea3d62a8098f4.d: crates/letdma/src/lib.rs

/root/repo/target/debug/deps/libletdma-f09ea3d62a8098f4.rlib: crates/letdma/src/lib.rs

/root/repo/target/debug/deps/libletdma-f09ea3d62a8098f4.rmeta: crates/letdma/src/lib.rs

crates/letdma/src/lib.rs:
