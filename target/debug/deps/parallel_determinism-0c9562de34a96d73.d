/root/repo/target/debug/deps/parallel_determinism-0c9562de34a96d73.d: crates/milp/tests/parallel_determinism.rs Cargo.toml

/root/repo/target/debug/deps/libparallel_determinism-0c9562de34a96d73.rmeta: crates/milp/tests/parallel_determinism.rs Cargo.toml

crates/milp/tests/parallel_determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
