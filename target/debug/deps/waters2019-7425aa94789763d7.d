/root/repo/target/debug/deps/waters2019-7425aa94789763d7.d: crates/waters/src/lib.rs crates/waters/src/case_study.rs crates/waters/src/gen.rs

/root/repo/target/debug/deps/libwaters2019-7425aa94789763d7.rlib: crates/waters/src/lib.rs crates/waters/src/case_study.rs crates/waters/src/gen.rs

/root/repo/target/debug/deps/libwaters2019-7425aa94789763d7.rmeta: crates/waters/src/lib.rs crates/waters/src/case_study.rs crates/waters/src/gen.rs

crates/waters/src/lib.rs:
crates/waters/src/case_study.rs:
crates/waters/src/gen.rs:
