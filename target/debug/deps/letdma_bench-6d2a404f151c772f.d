/root/repo/target/debug/deps/letdma_bench-6d2a404f151c772f.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/json.rs crates/bench/src/milp_bench.rs

/root/repo/target/debug/deps/libletdma_bench-6d2a404f151c772f.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/json.rs crates/bench/src/milp_bench.rs

/root/repo/target/debug/deps/libletdma_bench-6d2a404f151c772f.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/json.rs crates/bench/src/milp_bench.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/json.rs:
crates/bench/src/milp_bench.rs:
