/root/repo/target/debug/deps/letdma_core-5f63f60ab2cc44b3.d: crates/core/src/lib.rs crates/core/src/cases.rs crates/core/src/instrument.rs crates/core/src/parallel.rs crates/core/src/rng.rs Cargo.toml

/root/repo/target/debug/deps/libletdma_core-5f63f60ab2cc44b3.rmeta: crates/core/src/lib.rs crates/core/src/cases.rs crates/core/src/instrument.rs crates/core/src/parallel.rs crates/core/src/rng.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/cases.rs:
crates/core/src/instrument.rs:
crates/core/src/parallel.rs:
crates/core/src/rng.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
