/root/repo/target/debug/deps/letdma_bench-128d6e3abd4da762.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/json.rs crates/bench/src/milp_bench.rs

/root/repo/target/debug/deps/letdma_bench-128d6e3abd4da762: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/json.rs crates/bench/src/milp_bench.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/json.rs:
crates/bench/src/milp_bench.rs:
