/root/repo/target/debug/deps/letdma_sim-d31e48166deb91fb.d: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/report.rs Cargo.toml

/root/repo/target/debug/deps/libletdma_sim-d31e48166deb91fb.rmeta: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/report.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/config.rs:
crates/sim/src/engine.rs:
crates/sim/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
