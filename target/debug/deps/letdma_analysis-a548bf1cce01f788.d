/root/repo/target/debug/deps/letdma_analysis-a548bf1cce01f788.d: crates/analysis/src/lib.rs crates/analysis/src/holistic.rs crates/analysis/src/interference.rs crates/analysis/src/rta.rs crates/analysis/src/sensitivity.rs

/root/repo/target/debug/deps/libletdma_analysis-a548bf1cce01f788.rlib: crates/analysis/src/lib.rs crates/analysis/src/holistic.rs crates/analysis/src/interference.rs crates/analysis/src/rta.rs crates/analysis/src/sensitivity.rs

/root/repo/target/debug/deps/libletdma_analysis-a548bf1cce01f788.rmeta: crates/analysis/src/lib.rs crates/analysis/src/holistic.rs crates/analysis/src/interference.rs crates/analysis/src/rta.rs crates/analysis/src/sensitivity.rs

crates/analysis/src/lib.rs:
crates/analysis/src/holistic.rs:
crates/analysis/src/interference.rs:
crates/analysis/src/rta.rs:
crates/analysis/src/sensitivity.rs:
