/root/repo/target/debug/deps/regressions-53351d9d2098490d.d: crates/letdma/../../tests/regressions.rs Cargo.toml

/root/repo/target/debug/deps/libregressions-53351d9d2098490d.rmeta: crates/letdma/../../tests/regressions.rs Cargo.toml

crates/letdma/../../tests/regressions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
