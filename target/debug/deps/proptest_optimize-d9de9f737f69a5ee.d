/root/repo/target/debug/deps/proptest_optimize-d9de9f737f69a5ee.d: crates/opt/tests/proptest_optimize.rs

/root/repo/target/debug/deps/proptest_optimize-d9de9f737f69a5ee: crates/opt/tests/proptest_optimize.rs

crates/opt/tests/proptest_optimize.rs:
