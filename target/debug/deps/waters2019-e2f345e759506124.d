/root/repo/target/debug/deps/waters2019-e2f345e759506124.d: crates/waters/src/lib.rs crates/waters/src/case_study.rs crates/waters/src/gen.rs Cargo.toml

/root/repo/target/debug/deps/libwaters2019-e2f345e759506124.rmeta: crates/waters/src/lib.rs crates/waters/src/case_study.rs crates/waters/src/gen.rs Cargo.toml

crates/waters/src/lib.rs:
crates/waters/src/case_study.rs:
crates/waters/src/gen.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
