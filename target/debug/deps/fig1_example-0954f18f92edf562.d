/root/repo/target/debug/deps/fig1_example-0954f18f92edf562.d: crates/letdma/../../tests/fig1_example.rs

/root/repo/target/debug/deps/fig1_example-0954f18f92edf562: crates/letdma/../../tests/fig1_example.rs

crates/letdma/../../tests/fig1_example.rs:
