/root/repo/target/debug/deps/scaling-9d1544cb7b97aa62.d: crates/bench/benches/scaling.rs Cargo.toml

/root/repo/target/debug/deps/libscaling-9d1544cb7b97aa62.rmeta: crates/bench/benches/scaling.rs Cargo.toml

crates/bench/benches/scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
