/root/repo/target/debug/deps/letdma_sim-1c15c5e82c7585f1.d: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/report.rs

/root/repo/target/debug/deps/libletdma_sim-1c15c5e82c7585f1.rmeta: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/report.rs

crates/sim/src/lib.rs:
crates/sim/src/config.rs:
crates/sim/src/engine.rs:
crates/sim/src/report.rs:
