/root/repo/target/debug/deps/simulation-84f817ea19bcc529.d: crates/sim/tests/simulation.rs

/root/repo/target/debug/deps/simulation-84f817ea19bcc529: crates/sim/tests/simulation.rs

crates/sim/tests/simulation.rs:
