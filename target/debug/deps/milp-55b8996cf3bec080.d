/root/repo/target/debug/deps/milp-55b8996cf3bec080.d: crates/milp/src/lib.rs crates/milp/src/basis.rs crates/milp/src/expr.rs crates/milp/src/lp_format.rs crates/milp/src/model.rs crates/milp/src/simplex.rs crates/milp/src/solver.rs

/root/repo/target/debug/deps/libmilp-55b8996cf3bec080.rlib: crates/milp/src/lib.rs crates/milp/src/basis.rs crates/milp/src/expr.rs crates/milp/src/lp_format.rs crates/milp/src/model.rs crates/milp/src/simplex.rs crates/milp/src/solver.rs

/root/repo/target/debug/deps/libmilp-55b8996cf3bec080.rmeta: crates/milp/src/lib.rs crates/milp/src/basis.rs crates/milp/src/expr.rs crates/milp/src/lp_format.rs crates/milp/src/model.rs crates/milp/src/simplex.rs crates/milp/src/solver.rs

crates/milp/src/lib.rs:
crates/milp/src/basis.rs:
crates/milp/src/expr.rs:
crates/milp/src/lp_format.rs:
crates/milp/src/model.rs:
crates/milp/src/simplex.rs:
crates/milp/src/solver.rs:
