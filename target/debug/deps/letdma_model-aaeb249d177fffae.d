/root/repo/target/debug/deps/letdma_model-aaeb249d177fffae.d: crates/model/src/lib.rs crates/model/src/conformance.rs crates/model/src/error.rs crates/model/src/ids.rs crates/model/src/label.rs crates/model/src/let_semantics.rs crates/model/src/platform.rs crates/model/src/system.rs crates/model/src/task.rs crates/model/src/time.rs crates/model/src/transfer.rs

/root/repo/target/debug/deps/letdma_model-aaeb249d177fffae: crates/model/src/lib.rs crates/model/src/conformance.rs crates/model/src/error.rs crates/model/src/ids.rs crates/model/src/label.rs crates/model/src/let_semantics.rs crates/model/src/platform.rs crates/model/src/system.rs crates/model/src/task.rs crates/model/src/time.rs crates/model/src/transfer.rs

crates/model/src/lib.rs:
crates/model/src/conformance.rs:
crates/model/src/error.rs:
crates/model/src/ids.rs:
crates/model/src/label.rs:
crates/model/src/let_semantics.rs:
crates/model/src/platform.rs:
crates/model/src/system.rs:
crates/model/src/task.rs:
crates/model/src/time.rs:
crates/model/src/transfer.rs:
