/root/repo/target/debug/deps/proptest_optimize-a68223138bcfb6e3.d: crates/opt/tests/proptest_optimize.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_optimize-a68223138bcfb6e3.rmeta: crates/opt/tests/proptest_optimize.rs Cargo.toml

crates/opt/tests/proptest_optimize.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
