/root/repo/target/debug/deps/repro-7cf38f39028e2925.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-7cf38f39028e2925: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
