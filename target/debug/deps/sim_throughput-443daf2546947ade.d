/root/repo/target/debug/deps/sim_throughput-443daf2546947ade.d: crates/bench/benches/sim_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libsim_throughput-443daf2546947ade.rmeta: crates/bench/benches/sim_throughput.rs Cargo.toml

crates/bench/benches/sim_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
