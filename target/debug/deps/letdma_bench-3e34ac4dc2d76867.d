/root/repo/target/debug/deps/letdma_bench-3e34ac4dc2d76867.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/json.rs crates/bench/src/milp_bench.rs Cargo.toml

/root/repo/target/debug/deps/libletdma_bench-3e34ac4dc2d76867.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/json.rs crates/bench/src/milp_bench.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/json.rs:
crates/bench/src/milp_bench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
