/root/repo/target/debug/deps/letdma_opt-1a84204ed67cdf0f.d: crates/opt/src/lib.rs crates/opt/src/config.rs crates/opt/src/formulation.rs crates/opt/src/heuristic.rs crates/opt/src/improve.rs crates/opt/src/optimizer.rs crates/opt/src/solution.rs

/root/repo/target/debug/deps/libletdma_opt-1a84204ed67cdf0f.rlib: crates/opt/src/lib.rs crates/opt/src/config.rs crates/opt/src/formulation.rs crates/opt/src/heuristic.rs crates/opt/src/improve.rs crates/opt/src/optimizer.rs crates/opt/src/solution.rs

/root/repo/target/debug/deps/libletdma_opt-1a84204ed67cdf0f.rmeta: crates/opt/src/lib.rs crates/opt/src/config.rs crates/opt/src/formulation.rs crates/opt/src/heuristic.rs crates/opt/src/improve.rs crates/opt/src/optimizer.rs crates/opt/src/solution.rs

crates/opt/src/lib.rs:
crates/opt/src/config.rs:
crates/opt/src/formulation.rs:
crates/opt/src/heuristic.rs:
crates/opt/src/improve.rs:
crates/opt/src/optimizer.rs:
crates/opt/src/solution.rs:
