/root/repo/target/debug/deps/fig1_example-f1f8431f124bde70.d: crates/letdma/../../tests/fig1_example.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_example-f1f8431f124bde70.rmeta: crates/letdma/../../tests/fig1_example.rs Cargo.toml

crates/letdma/../../tests/fig1_example.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
