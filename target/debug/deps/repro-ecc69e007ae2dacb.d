/root/repo/target/debug/deps/repro-ecc69e007ae2dacb.d: crates/bench/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-ecc69e007ae2dacb.rmeta: crates/bench/src/bin/repro.rs Cargo.toml

crates/bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
