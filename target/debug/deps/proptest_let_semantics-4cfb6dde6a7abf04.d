/root/repo/target/debug/deps/proptest_let_semantics-4cfb6dde6a7abf04.d: crates/model/tests/proptest_let_semantics.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_let_semantics-4cfb6dde6a7abf04.rmeta: crates/model/tests/proptest_let_semantics.rs Cargo.toml

crates/model/tests/proptest_let_semantics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
