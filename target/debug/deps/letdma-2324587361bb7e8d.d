/root/repo/target/debug/deps/letdma-2324587361bb7e8d.d: crates/letdma/src/lib.rs

/root/repo/target/debug/deps/letdma-2324587361bb7e8d: crates/letdma/src/lib.rs

crates/letdma/src/lib.rs:
