/root/repo/target/debug/deps/sim_throughput-e2f17c082b7a0575.d: crates/bench/benches/sim_throughput.rs

/root/repo/target/debug/deps/sim_throughput-e2f17c082b7a0575: crates/bench/benches/sim_throughput.rs

crates/bench/benches/sim_throughput.rs:
