/root/repo/target/debug/deps/proptest_solver-c8f3af65b89d3440.d: crates/milp/tests/proptest_solver.rs

/root/repo/target/debug/deps/proptest_solver-c8f3af65b89d3440: crates/milp/tests/proptest_solver.rs

crates/milp/tests/proptest_solver.rs:
