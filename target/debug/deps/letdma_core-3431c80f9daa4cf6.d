/root/repo/target/debug/deps/letdma_core-3431c80f9daa4cf6.d: crates/core/src/lib.rs crates/core/src/cases.rs crates/core/src/instrument.rs crates/core/src/parallel.rs crates/core/src/rng.rs Cargo.toml

/root/repo/target/debug/deps/libletdma_core-3431c80f9daa4cf6.rmeta: crates/core/src/lib.rs crates/core/src/cases.rs crates/core/src/instrument.rs crates/core/src/parallel.rs crates/core/src/rng.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/cases.rs:
crates/core/src/instrument.rs:
crates/core/src/parallel.rs:
crates/core/src/rng.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
