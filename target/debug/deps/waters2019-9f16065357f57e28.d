/root/repo/target/debug/deps/waters2019-9f16065357f57e28.d: crates/waters/src/lib.rs crates/waters/src/case_study.rs crates/waters/src/gen.rs

/root/repo/target/debug/deps/waters2019-9f16065357f57e28: crates/waters/src/lib.rs crates/waters/src/case_study.rs crates/waters/src/gen.rs

crates/waters/src/lib.rs:
crates/waters/src/case_study.rs:
crates/waters/src/gen.rs:
