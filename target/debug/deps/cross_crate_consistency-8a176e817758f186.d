/root/repo/target/debug/deps/cross_crate_consistency-8a176e817758f186.d: crates/letdma/../../tests/cross_crate_consistency.rs Cargo.toml

/root/repo/target/debug/deps/libcross_crate_consistency-8a176e817758f186.rmeta: crates/letdma/../../tests/cross_crate_consistency.rs Cargo.toml

crates/letdma/../../tests/cross_crate_consistency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
