/root/repo/target/debug/deps/proptest_let_semantics-2b4e749a57f55037.d: crates/model/tests/proptest_let_semantics.rs

/root/repo/target/debug/deps/proptest_let_semantics-2b4e749a57f55037: crates/model/tests/proptest_let_semantics.rs

crates/model/tests/proptest_let_semantics.rs:
