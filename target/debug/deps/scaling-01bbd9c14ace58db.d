/root/repo/target/debug/deps/scaling-01bbd9c14ace58db.d: crates/bench/benches/scaling.rs

/root/repo/target/debug/deps/scaling-01bbd9c14ace58db: crates/bench/benches/scaling.rs

crates/bench/benches/scaling.rs:
