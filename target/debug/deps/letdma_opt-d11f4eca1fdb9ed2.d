/root/repo/target/debug/deps/letdma_opt-d11f4eca1fdb9ed2.d: crates/opt/src/lib.rs crates/opt/src/batch.rs crates/opt/src/config.rs crates/opt/src/formulation.rs crates/opt/src/heuristic.rs crates/opt/src/improve.rs crates/opt/src/optimizer.rs crates/opt/src/solution.rs

/root/repo/target/debug/deps/libletdma_opt-d11f4eca1fdb9ed2.rmeta: crates/opt/src/lib.rs crates/opt/src/batch.rs crates/opt/src/config.rs crates/opt/src/formulation.rs crates/opt/src/heuristic.rs crates/opt/src/improve.rs crates/opt/src/optimizer.rs crates/opt/src/solution.rs

crates/opt/src/lib.rs:
crates/opt/src/batch.rs:
crates/opt/src/config.rs:
crates/opt/src/formulation.rs:
crates/opt/src/heuristic.rs:
crates/opt/src/improve.rs:
crates/opt/src/optimizer.rs:
crates/opt/src/solution.rs:
