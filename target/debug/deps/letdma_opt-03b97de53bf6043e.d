/root/repo/target/debug/deps/letdma_opt-03b97de53bf6043e.d: crates/opt/src/lib.rs crates/opt/src/batch.rs crates/opt/src/config.rs crates/opt/src/formulation.rs crates/opt/src/heuristic.rs crates/opt/src/improve.rs crates/opt/src/optimizer.rs crates/opt/src/solution.rs Cargo.toml

/root/repo/target/debug/deps/libletdma_opt-03b97de53bf6043e.rmeta: crates/opt/src/lib.rs crates/opt/src/batch.rs crates/opt/src/config.rs crates/opt/src/formulation.rs crates/opt/src/heuristic.rs crates/opt/src/improve.rs crates/opt/src/optimizer.rs crates/opt/src/solution.rs Cargo.toml

crates/opt/src/lib.rs:
crates/opt/src/batch.rs:
crates/opt/src/config.rs:
crates/opt/src/formulation.rs:
crates/opt/src/heuristic.rs:
crates/opt/src/improve.rs:
crates/opt/src/optimizer.rs:
crates/opt/src/solution.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
