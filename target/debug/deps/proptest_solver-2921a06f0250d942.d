/root/repo/target/debug/deps/proptest_solver-2921a06f0250d942.d: crates/milp/tests/proptest_solver.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_solver-2921a06f0250d942.rmeta: crates/milp/tests/proptest_solver.rs Cargo.toml

crates/milp/tests/proptest_solver.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
