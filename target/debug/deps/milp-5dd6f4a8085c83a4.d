/root/repo/target/debug/deps/milp-5dd6f4a8085c83a4.d: crates/milp/src/lib.rs crates/milp/src/basis.rs crates/milp/src/expr.rs crates/milp/src/lp_format.rs crates/milp/src/model.rs crates/milp/src/simplex.rs crates/milp/src/solver.rs

/root/repo/target/debug/deps/libmilp-5dd6f4a8085c83a4.rmeta: crates/milp/src/lib.rs crates/milp/src/basis.rs crates/milp/src/expr.rs crates/milp/src/lp_format.rs crates/milp/src/model.rs crates/milp/src/simplex.rs crates/milp/src/solver.rs

crates/milp/src/lib.rs:
crates/milp/src/basis.rs:
crates/milp/src/expr.rs:
crates/milp/src/lp_format.rs:
crates/milp/src/model.rs:
crates/milp/src/simplex.rs:
crates/milp/src/solver.rs:
