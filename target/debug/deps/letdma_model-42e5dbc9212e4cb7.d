/root/repo/target/debug/deps/letdma_model-42e5dbc9212e4cb7.d: crates/model/src/lib.rs crates/model/src/conformance.rs crates/model/src/error.rs crates/model/src/ids.rs crates/model/src/label.rs crates/model/src/let_semantics.rs crates/model/src/platform.rs crates/model/src/system.rs crates/model/src/task.rs crates/model/src/time.rs crates/model/src/transfer.rs

/root/repo/target/debug/deps/libletdma_model-42e5dbc9212e4cb7.rmeta: crates/model/src/lib.rs crates/model/src/conformance.rs crates/model/src/error.rs crates/model/src/ids.rs crates/model/src/label.rs crates/model/src/let_semantics.rs crates/model/src/platform.rs crates/model/src/system.rs crates/model/src/task.rs crates/model/src/time.rs crates/model/src/transfer.rs

crates/model/src/lib.rs:
crates/model/src/conformance.rs:
crates/model/src/error.rs:
crates/model/src/ids.rs:
crates/model/src/label.rs:
crates/model/src/let_semantics.rs:
crates/model/src/platform.rs:
crates/model/src/system.rs:
crates/model/src/task.rs:
crates/model/src/time.rs:
crates/model/src/transfer.rs:
