/root/repo/target/debug/deps/fig2_latency-561c01245dd7b5f5.d: crates/bench/benches/fig2_latency.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_latency-561c01245dd7b5f5.rmeta: crates/bench/benches/fig2_latency.rs Cargo.toml

crates/bench/benches/fig2_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
