/root/repo/target/debug/deps/letdma_sim-c4c0a1baee700671.d: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/report.rs

/root/repo/target/debug/deps/libletdma_sim-c4c0a1baee700671.rlib: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/report.rs

/root/repo/target/debug/deps/libletdma_sim-c4c0a1baee700671.rmeta: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/report.rs

crates/sim/src/lib.rs:
crates/sim/src/config.rs:
crates/sim/src/engine.rs:
crates/sim/src/report.rs:
