/root/repo/target/debug/deps/simulation-ebec62a42317024c.d: crates/sim/tests/simulation.rs Cargo.toml

/root/repo/target/debug/deps/libsimulation-ebec62a42317024c.rmeta: crates/sim/tests/simulation.rs Cargo.toml

crates/sim/tests/simulation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
