/root/repo/target/debug/deps/letdma-5999a37ed8354558.d: crates/letdma/src/lib.rs

/root/repo/target/debug/deps/libletdma-5999a37ed8354558.rmeta: crates/letdma/src/lib.rs

crates/letdma/src/lib.rs:
