/root/repo/target/debug/deps/letdma-5f38bc4ea42b4ae3.d: crates/letdma/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libletdma-5f38bc4ea42b4ae3.rmeta: crates/letdma/src/lib.rs Cargo.toml

crates/letdma/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
