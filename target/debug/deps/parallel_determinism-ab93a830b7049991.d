/root/repo/target/debug/deps/parallel_determinism-ab93a830b7049991.d: crates/milp/tests/parallel_determinism.rs

/root/repo/target/debug/deps/parallel_determinism-ab93a830b7049991: crates/milp/tests/parallel_determinism.rs

crates/milp/tests/parallel_determinism.rs:
