/root/repo/target/debug/deps/letdma_analysis-43042508ba048fef.d: crates/analysis/src/lib.rs crates/analysis/src/holistic.rs crates/analysis/src/interference.rs crates/analysis/src/rta.rs crates/analysis/src/sensitivity.rs

/root/repo/target/debug/deps/libletdma_analysis-43042508ba048fef.rmeta: crates/analysis/src/lib.rs crates/analysis/src/holistic.rs crates/analysis/src/interference.rs crates/analysis/src/rta.rs crates/analysis/src/sensitivity.rs

crates/analysis/src/lib.rs:
crates/analysis/src/holistic.rs:
crates/analysis/src/interference.rs:
crates/analysis/src/rta.rs:
crates/analysis/src/sensitivity.rs:
