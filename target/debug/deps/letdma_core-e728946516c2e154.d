/root/repo/target/debug/deps/letdma_core-e728946516c2e154.d: crates/core/src/lib.rs crates/core/src/cases.rs crates/core/src/instrument.rs crates/core/src/parallel.rs crates/core/src/rng.rs

/root/repo/target/debug/deps/libletdma_core-e728946516c2e154.rmeta: crates/core/src/lib.rs crates/core/src/cases.rs crates/core/src/instrument.rs crates/core/src/parallel.rs crates/core/src/rng.rs

crates/core/src/lib.rs:
crates/core/src/cases.rs:
crates/core/src/instrument.rs:
crates/core/src/parallel.rs:
crates/core/src/rng.rs:
