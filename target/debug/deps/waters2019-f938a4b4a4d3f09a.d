/root/repo/target/debug/deps/waters2019-f938a4b4a4d3f09a.d: crates/waters/src/lib.rs crates/waters/src/case_study.rs crates/waters/src/gen.rs

/root/repo/target/debug/deps/libwaters2019-f938a4b4a4d3f09a.rmeta: crates/waters/src/lib.rs crates/waters/src/case_study.rs crates/waters/src/gen.rs

crates/waters/src/lib.rs:
crates/waters/src/case_study.rs:
crates/waters/src/gen.rs:
