/root/repo/target/debug/deps/table1_milp-287a2899a40d8396.d: crates/bench/benches/table1_milp.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_milp-287a2899a40d8396.rmeta: crates/bench/benches/table1_milp.rs Cargo.toml

crates/bench/benches/table1_milp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
