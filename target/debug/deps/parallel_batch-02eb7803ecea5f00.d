/root/repo/target/debug/deps/parallel_batch-02eb7803ecea5f00.d: crates/letdma/../../tests/parallel_batch.rs Cargo.toml

/root/repo/target/debug/deps/libparallel_batch-02eb7803ecea5f00.rmeta: crates/letdma/../../tests/parallel_batch.rs Cargo.toml

crates/letdma/../../tests/parallel_batch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
