/root/repo/target/debug/deps/waters2019-ce77ae45b35639ba.d: crates/waters/src/lib.rs crates/waters/src/case_study.rs crates/waters/src/gen.rs Cargo.toml

/root/repo/target/debug/deps/libwaters2019-ce77ae45b35639ba.rmeta: crates/waters/src/lib.rs crates/waters/src/case_study.rs crates/waters/src/gen.rs Cargo.toml

crates/waters/src/lib.rs:
crates/waters/src/case_study.rs:
crates/waters/src/gen.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
