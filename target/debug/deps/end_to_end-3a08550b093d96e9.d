/root/repo/target/debug/deps/end_to_end-3a08550b093d96e9.d: crates/opt/tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-3a08550b093d96e9: crates/opt/tests/end_to_end.rs

crates/opt/tests/end_to_end.rs:
