/root/repo/target/debug/deps/letdma_model-5f6ba62ca476fc39.d: crates/model/src/lib.rs crates/model/src/conformance.rs crates/model/src/error.rs crates/model/src/ids.rs crates/model/src/label.rs crates/model/src/let_semantics.rs crates/model/src/platform.rs crates/model/src/system.rs crates/model/src/task.rs crates/model/src/time.rs crates/model/src/transfer.rs Cargo.toml

/root/repo/target/debug/deps/libletdma_model-5f6ba62ca476fc39.rmeta: crates/model/src/lib.rs crates/model/src/conformance.rs crates/model/src/error.rs crates/model/src/ids.rs crates/model/src/label.rs crates/model/src/let_semantics.rs crates/model/src/platform.rs crates/model/src/system.rs crates/model/src/task.rs crates/model/src/time.rs crates/model/src/transfer.rs Cargo.toml

crates/model/src/lib.rs:
crates/model/src/conformance.rs:
crates/model/src/error.rs:
crates/model/src/ids.rs:
crates/model/src/label.rs:
crates/model/src/let_semantics.rs:
crates/model/src/platform.rs:
crates/model/src/system.rs:
crates/model/src/task.rs:
crates/model/src/time.rs:
crates/model/src/transfer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
