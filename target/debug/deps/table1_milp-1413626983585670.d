/root/repo/target/debug/deps/table1_milp-1413626983585670.d: crates/bench/benches/table1_milp.rs

/root/repo/target/debug/deps/table1_milp-1413626983585670: crates/bench/benches/table1_milp.rs

crates/bench/benches/table1_milp.rs:
