/root/repo/target/debug/deps/regressions-b2be3b3803a3228c.d: crates/letdma/../../tests/regressions.rs

/root/repo/target/debug/deps/regressions-b2be3b3803a3228c: crates/letdma/../../tests/regressions.rs

crates/letdma/../../tests/regressions.rs:
