/root/repo/target/debug/deps/letdma-2bbeea8f4e71a249.d: crates/letdma/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libletdma-2bbeea8f4e71a249.rmeta: crates/letdma/src/lib.rs Cargo.toml

crates/letdma/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
