/root/repo/target/debug/deps/letdma_analysis-f2b2f0dbd7d161ea.d: crates/analysis/src/lib.rs crates/analysis/src/holistic.rs crates/analysis/src/interference.rs crates/analysis/src/rta.rs crates/analysis/src/sensitivity.rs

/root/repo/target/debug/deps/letdma_analysis-f2b2f0dbd7d161ea: crates/analysis/src/lib.rs crates/analysis/src/holistic.rs crates/analysis/src/interference.rs crates/analysis/src/rta.rs crates/analysis/src/sensitivity.rs

crates/analysis/src/lib.rs:
crates/analysis/src/holistic.rs:
crates/analysis/src/interference.rs:
crates/analysis/src/rta.rs:
crates/analysis/src/sensitivity.rs:
