/root/repo/target/debug/deps/fig2_latency-4b93b2fc8c62b6f6.d: crates/bench/benches/fig2_latency.rs

/root/repo/target/debug/deps/fig2_latency-4b93b2fc8c62b6f6: crates/bench/benches/fig2_latency.rs

crates/bench/benches/fig2_latency.rs:
