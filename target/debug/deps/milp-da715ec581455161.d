/root/repo/target/debug/deps/milp-da715ec581455161.d: crates/milp/src/lib.rs crates/milp/src/basis.rs crates/milp/src/expr.rs crates/milp/src/lp_format.rs crates/milp/src/model.rs crates/milp/src/simplex.rs crates/milp/src/solver.rs Cargo.toml

/root/repo/target/debug/deps/libmilp-da715ec581455161.rmeta: crates/milp/src/lib.rs crates/milp/src/basis.rs crates/milp/src/expr.rs crates/milp/src/lp_format.rs crates/milp/src/model.rs crates/milp/src/simplex.rs crates/milp/src/solver.rs Cargo.toml

crates/milp/src/lib.rs:
crates/milp/src/basis.rs:
crates/milp/src/expr.rs:
crates/milp/src/lp_format.rs:
crates/milp/src/model.rs:
crates/milp/src/simplex.rs:
crates/milp/src/solver.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
