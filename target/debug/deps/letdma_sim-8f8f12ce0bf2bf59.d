/root/repo/target/debug/deps/letdma_sim-8f8f12ce0bf2bf59.d: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/report.rs

/root/repo/target/debug/deps/letdma_sim-8f8f12ce0bf2bf59: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/report.rs

crates/sim/src/lib.rs:
crates/sim/src/config.rs:
crates/sim/src/engine.rs:
crates/sim/src/report.rs:
