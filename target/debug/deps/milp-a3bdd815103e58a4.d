/root/repo/target/debug/deps/milp-a3bdd815103e58a4.d: crates/milp/src/lib.rs crates/milp/src/basis.rs crates/milp/src/expr.rs crates/milp/src/lp_format.rs crates/milp/src/model.rs crates/milp/src/simplex.rs crates/milp/src/solver.rs

/root/repo/target/debug/deps/milp-a3bdd815103e58a4: crates/milp/src/lib.rs crates/milp/src/basis.rs crates/milp/src/expr.rs crates/milp/src/lp_format.rs crates/milp/src/model.rs crates/milp/src/simplex.rs crates/milp/src/solver.rs

crates/milp/src/lib.rs:
crates/milp/src/basis.rs:
crates/milp/src/expr.rs:
crates/milp/src/lp_format.rs:
crates/milp/src/model.rs:
crates/milp/src/simplex.rs:
crates/milp/src/solver.rs:
