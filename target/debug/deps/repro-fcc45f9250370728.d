/root/repo/target/debug/deps/repro-fcc45f9250370728.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-fcc45f9250370728: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
