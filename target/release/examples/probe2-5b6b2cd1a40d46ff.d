/root/repo/target/release/examples/probe2-5b6b2cd1a40d46ff.d: crates/bench/examples/probe2.rs

/root/repo/target/release/examples/probe2-5b6b2cd1a40d46ff: crates/bench/examples/probe2.rs

crates/bench/examples/probe2.rs:
