/root/repo/target/release/examples/probe_timing-c5983bd577e8b300.d: crates/bench/examples/probe_timing.rs

/root/repo/target/release/examples/probe_timing-c5983bd577e8b300: crates/bench/examples/probe_timing.rs

crates/bench/examples/probe_timing.rs:
