/root/repo/target/release/examples/probe-4ab6179aeecfb858.d: crates/bench/examples/probe.rs

/root/repo/target/release/examples/probe-4ab6179aeecfb858: crates/bench/examples/probe.rs

crates/bench/examples/probe.rs:
