/root/repo/target/release/examples/probe_timing-17dca8a088b8be7c.d: crates/letdma/examples/probe_timing.rs

/root/repo/target/release/examples/probe_timing-17dca8a088b8be7c: crates/letdma/examples/probe_timing.rs

crates/letdma/examples/probe_timing.rs:
