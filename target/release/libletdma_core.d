/root/repo/target/release/libletdma_core.rlib: /root/repo/crates/core/src/cases.rs /root/repo/crates/core/src/instrument.rs /root/repo/crates/core/src/lib.rs /root/repo/crates/core/src/rng.rs
