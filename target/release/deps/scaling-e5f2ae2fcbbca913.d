/root/repo/target/release/deps/scaling-e5f2ae2fcbbca913.d: crates/bench/benches/scaling.rs

/root/repo/target/release/deps/scaling-e5f2ae2fcbbca913: crates/bench/benches/scaling.rs

crates/bench/benches/scaling.rs:
