/root/repo/target/release/deps/letdma_opt-7d30cf7c2bea2c9d.d: crates/opt/src/lib.rs crates/opt/src/batch.rs crates/opt/src/config.rs crates/opt/src/formulation.rs crates/opt/src/heuristic.rs crates/opt/src/improve.rs crates/opt/src/optimizer.rs crates/opt/src/solution.rs

/root/repo/target/release/deps/libletdma_opt-7d30cf7c2bea2c9d.rlib: crates/opt/src/lib.rs crates/opt/src/batch.rs crates/opt/src/config.rs crates/opt/src/formulation.rs crates/opt/src/heuristic.rs crates/opt/src/improve.rs crates/opt/src/optimizer.rs crates/opt/src/solution.rs

/root/repo/target/release/deps/libletdma_opt-7d30cf7c2bea2c9d.rmeta: crates/opt/src/lib.rs crates/opt/src/batch.rs crates/opt/src/config.rs crates/opt/src/formulation.rs crates/opt/src/heuristic.rs crates/opt/src/improve.rs crates/opt/src/optimizer.rs crates/opt/src/solution.rs

crates/opt/src/lib.rs:
crates/opt/src/batch.rs:
crates/opt/src/config.rs:
crates/opt/src/formulation.rs:
crates/opt/src/heuristic.rs:
crates/opt/src/improve.rs:
crates/opt/src/optimizer.rs:
crates/opt/src/solution.rs:
