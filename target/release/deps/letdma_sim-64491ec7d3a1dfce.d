/root/repo/target/release/deps/letdma_sim-64491ec7d3a1dfce.d: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/report.rs

/root/repo/target/release/deps/libletdma_sim-64491ec7d3a1dfce.rlib: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/report.rs

/root/repo/target/release/deps/libletdma_sim-64491ec7d3a1dfce.rmeta: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/report.rs

crates/sim/src/lib.rs:
crates/sim/src/config.rs:
crates/sim/src/engine.rs:
crates/sim/src/report.rs:
