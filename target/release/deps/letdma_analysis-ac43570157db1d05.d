/root/repo/target/release/deps/letdma_analysis-ac43570157db1d05.d: crates/analysis/src/lib.rs crates/analysis/src/holistic.rs crates/analysis/src/interference.rs crates/analysis/src/rta.rs crates/analysis/src/sensitivity.rs

/root/repo/target/release/deps/libletdma_analysis-ac43570157db1d05.rlib: crates/analysis/src/lib.rs crates/analysis/src/holistic.rs crates/analysis/src/interference.rs crates/analysis/src/rta.rs crates/analysis/src/sensitivity.rs

/root/repo/target/release/deps/libletdma_analysis-ac43570157db1d05.rmeta: crates/analysis/src/lib.rs crates/analysis/src/holistic.rs crates/analysis/src/interference.rs crates/analysis/src/rta.rs crates/analysis/src/sensitivity.rs

crates/analysis/src/lib.rs:
crates/analysis/src/holistic.rs:
crates/analysis/src/interference.rs:
crates/analysis/src/rta.rs:
crates/analysis/src/sensitivity.rs:
