/root/repo/target/release/deps/letdma_bench-5fa8ae5cde4b55f5.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libletdma_bench-5fa8ae5cde4b55f5.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libletdma_bench-5fa8ae5cde4b55f5.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
