/root/repo/target/release/deps/letdma_core-00e1b650304d18a6.d: crates/core/src/lib.rs crates/core/src/cases.rs crates/core/src/instrument.rs crates/core/src/parallel.rs crates/core/src/rng.rs

/root/repo/target/release/deps/libletdma_core-00e1b650304d18a6.rlib: crates/core/src/lib.rs crates/core/src/cases.rs crates/core/src/instrument.rs crates/core/src/parallel.rs crates/core/src/rng.rs

/root/repo/target/release/deps/libletdma_core-00e1b650304d18a6.rmeta: crates/core/src/lib.rs crates/core/src/cases.rs crates/core/src/instrument.rs crates/core/src/parallel.rs crates/core/src/rng.rs

crates/core/src/lib.rs:
crates/core/src/cases.rs:
crates/core/src/instrument.rs:
crates/core/src/parallel.rs:
crates/core/src/rng.rs:
