/root/repo/target/release/deps/letdma-fa62436c728463f0.d: crates/letdma/src/lib.rs

/root/repo/target/release/deps/libletdma-fa62436c728463f0.rlib: crates/letdma/src/lib.rs

/root/repo/target/release/deps/libletdma-fa62436c728463f0.rmeta: crates/letdma/src/lib.rs

crates/letdma/src/lib.rs:
