/root/repo/target/release/deps/letdma_opt-5c8c482db8cb81f5.d: crates/opt/src/lib.rs crates/opt/src/batch.rs crates/opt/src/config.rs crates/opt/src/formulation.rs crates/opt/src/heuristic.rs crates/opt/src/improve.rs crates/opt/src/optimizer.rs crates/opt/src/solution.rs

/root/repo/target/release/deps/libletdma_opt-5c8c482db8cb81f5.rlib: crates/opt/src/lib.rs crates/opt/src/batch.rs crates/opt/src/config.rs crates/opt/src/formulation.rs crates/opt/src/heuristic.rs crates/opt/src/improve.rs crates/opt/src/optimizer.rs crates/opt/src/solution.rs

/root/repo/target/release/deps/libletdma_opt-5c8c482db8cb81f5.rmeta: crates/opt/src/lib.rs crates/opt/src/batch.rs crates/opt/src/config.rs crates/opt/src/formulation.rs crates/opt/src/heuristic.rs crates/opt/src/improve.rs crates/opt/src/optimizer.rs crates/opt/src/solution.rs

crates/opt/src/lib.rs:
crates/opt/src/batch.rs:
crates/opt/src/config.rs:
crates/opt/src/formulation.rs:
crates/opt/src/heuristic.rs:
crates/opt/src/improve.rs:
crates/opt/src/optimizer.rs:
crates/opt/src/solution.rs:
