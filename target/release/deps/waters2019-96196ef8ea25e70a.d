/root/repo/target/release/deps/waters2019-96196ef8ea25e70a.d: crates/waters/src/lib.rs crates/waters/src/case_study.rs crates/waters/src/gen.rs

/root/repo/target/release/deps/libwaters2019-96196ef8ea25e70a.rlib: crates/waters/src/lib.rs crates/waters/src/case_study.rs crates/waters/src/gen.rs

/root/repo/target/release/deps/libwaters2019-96196ef8ea25e70a.rmeta: crates/waters/src/lib.rs crates/waters/src/case_study.rs crates/waters/src/gen.rs

crates/waters/src/lib.rs:
crates/waters/src/case_study.rs:
crates/waters/src/gen.rs:
