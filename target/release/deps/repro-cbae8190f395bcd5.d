/root/repo/target/release/deps/repro-cbae8190f395bcd5.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-cbae8190f395bcd5: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
