/root/repo/target/release/deps/waters2019-350d46e5f66972a6.d: crates/waters/src/lib.rs crates/waters/src/case_study.rs crates/waters/src/gen.rs

/root/repo/target/release/deps/libwaters2019-350d46e5f66972a6.rlib: crates/waters/src/lib.rs crates/waters/src/case_study.rs crates/waters/src/gen.rs

/root/repo/target/release/deps/libwaters2019-350d46e5f66972a6.rmeta: crates/waters/src/lib.rs crates/waters/src/case_study.rs crates/waters/src/gen.rs

crates/waters/src/lib.rs:
crates/waters/src/case_study.rs:
crates/waters/src/gen.rs:
