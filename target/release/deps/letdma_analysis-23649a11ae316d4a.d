/root/repo/target/release/deps/letdma_analysis-23649a11ae316d4a.d: crates/analysis/src/lib.rs crates/analysis/src/holistic.rs crates/analysis/src/interference.rs crates/analysis/src/rta.rs crates/analysis/src/sensitivity.rs

/root/repo/target/release/deps/libletdma_analysis-23649a11ae316d4a.rlib: crates/analysis/src/lib.rs crates/analysis/src/holistic.rs crates/analysis/src/interference.rs crates/analysis/src/rta.rs crates/analysis/src/sensitivity.rs

/root/repo/target/release/deps/libletdma_analysis-23649a11ae316d4a.rmeta: crates/analysis/src/lib.rs crates/analysis/src/holistic.rs crates/analysis/src/interference.rs crates/analysis/src/rta.rs crates/analysis/src/sensitivity.rs

crates/analysis/src/lib.rs:
crates/analysis/src/holistic.rs:
crates/analysis/src/interference.rs:
crates/analysis/src/rta.rs:
crates/analysis/src/sensitivity.rs:
