/root/repo/target/release/deps/letdma-2f4be9c6bed34a2e.d: crates/letdma/src/lib.rs

/root/repo/target/release/deps/libletdma-2f4be9c6bed34a2e.rlib: crates/letdma/src/lib.rs

/root/repo/target/release/deps/libletdma-2f4be9c6bed34a2e.rmeta: crates/letdma/src/lib.rs

crates/letdma/src/lib.rs:
