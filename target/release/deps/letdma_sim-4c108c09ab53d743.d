/root/repo/target/release/deps/letdma_sim-4c108c09ab53d743.d: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/report.rs

/root/repo/target/release/deps/libletdma_sim-4c108c09ab53d743.rlib: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/report.rs

/root/repo/target/release/deps/libletdma_sim-4c108c09ab53d743.rmeta: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/report.rs

crates/sim/src/lib.rs:
crates/sim/src/config.rs:
crates/sim/src/engine.rs:
crates/sim/src/report.rs:
