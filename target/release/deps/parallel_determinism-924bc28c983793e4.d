/root/repo/target/release/deps/parallel_determinism-924bc28c983793e4.d: crates/milp/tests/parallel_determinism.rs

/root/repo/target/release/deps/parallel_determinism-924bc28c983793e4: crates/milp/tests/parallel_determinism.rs

crates/milp/tests/parallel_determinism.rs:
