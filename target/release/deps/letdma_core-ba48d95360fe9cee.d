/root/repo/target/release/deps/letdma_core-ba48d95360fe9cee.d: crates/core/src/lib.rs crates/core/src/cases.rs crates/core/src/instrument.rs crates/core/src/parallel.rs crates/core/src/rng.rs

/root/repo/target/release/deps/libletdma_core-ba48d95360fe9cee.rlib: crates/core/src/lib.rs crates/core/src/cases.rs crates/core/src/instrument.rs crates/core/src/parallel.rs crates/core/src/rng.rs

/root/repo/target/release/deps/libletdma_core-ba48d95360fe9cee.rmeta: crates/core/src/lib.rs crates/core/src/cases.rs crates/core/src/instrument.rs crates/core/src/parallel.rs crates/core/src/rng.rs

crates/core/src/lib.rs:
crates/core/src/cases.rs:
crates/core/src/instrument.rs:
crates/core/src/parallel.rs:
crates/core/src/rng.rs:
