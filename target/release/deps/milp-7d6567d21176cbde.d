/root/repo/target/release/deps/milp-7d6567d21176cbde.d: crates/milp/src/lib.rs crates/milp/src/basis.rs crates/milp/src/expr.rs crates/milp/src/lp_format.rs crates/milp/src/model.rs crates/milp/src/simplex.rs crates/milp/src/solver.rs

/root/repo/target/release/deps/milp-7d6567d21176cbde: crates/milp/src/lib.rs crates/milp/src/basis.rs crates/milp/src/expr.rs crates/milp/src/lp_format.rs crates/milp/src/model.rs crates/milp/src/simplex.rs crates/milp/src/solver.rs

crates/milp/src/lib.rs:
crates/milp/src/basis.rs:
crates/milp/src/expr.rs:
crates/milp/src/lp_format.rs:
crates/milp/src/model.rs:
crates/milp/src/simplex.rs:
crates/milp/src/solver.rs:
