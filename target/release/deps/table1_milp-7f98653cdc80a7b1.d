/root/repo/target/release/deps/table1_milp-7f98653cdc80a7b1.d: crates/bench/benches/table1_milp.rs

/root/repo/target/release/deps/table1_milp-7f98653cdc80a7b1: crates/bench/benches/table1_milp.rs

crates/bench/benches/table1_milp.rs:
