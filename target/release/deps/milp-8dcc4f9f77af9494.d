/root/repo/target/release/deps/milp-8dcc4f9f77af9494.d: crates/milp/src/lib.rs crates/milp/src/basis.rs crates/milp/src/expr.rs crates/milp/src/lp_format.rs crates/milp/src/model.rs crates/milp/src/simplex.rs crates/milp/src/solver.rs

/root/repo/target/release/deps/libmilp-8dcc4f9f77af9494.rlib: crates/milp/src/lib.rs crates/milp/src/basis.rs crates/milp/src/expr.rs crates/milp/src/lp_format.rs crates/milp/src/model.rs crates/milp/src/simplex.rs crates/milp/src/solver.rs

/root/repo/target/release/deps/libmilp-8dcc4f9f77af9494.rmeta: crates/milp/src/lib.rs crates/milp/src/basis.rs crates/milp/src/expr.rs crates/milp/src/lp_format.rs crates/milp/src/model.rs crates/milp/src/simplex.rs crates/milp/src/solver.rs

crates/milp/src/lib.rs:
crates/milp/src/basis.rs:
crates/milp/src/expr.rs:
crates/milp/src/lp_format.rs:
crates/milp/src/model.rs:
crates/milp/src/simplex.rs:
crates/milp/src/solver.rs:
