/root/repo/target/release/deps/probe-46253fa225327af3.d: crates/bench/src/bin/probe.rs

/root/repo/target/release/deps/probe-46253fa225327af3: crates/bench/src/bin/probe.rs

crates/bench/src/bin/probe.rs:
