/root/repo/target/release/deps/sim_throughput-1866d2deefb8b192.d: crates/bench/benches/sim_throughput.rs

/root/repo/target/release/deps/sim_throughput-1866d2deefb8b192: crates/bench/benches/sim_throughput.rs

crates/bench/benches/sim_throughput.rs:
