/root/repo/target/release/deps/proptest_solver-bd76d9f6942161b0.d: crates/milp/tests/proptest_solver.rs

/root/repo/target/release/deps/proptest_solver-bd76d9f6942161b0: crates/milp/tests/proptest_solver.rs

crates/milp/tests/proptest_solver.rs:
