/root/repo/target/release/deps/letdma_bench-54962c0f2593d28c.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/json.rs crates/bench/src/milp_bench.rs

/root/repo/target/release/deps/libletdma_bench-54962c0f2593d28c.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/json.rs crates/bench/src/milp_bench.rs

/root/repo/target/release/deps/libletdma_bench-54962c0f2593d28c.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/json.rs crates/bench/src/milp_bench.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/json.rs:
crates/bench/src/milp_bench.rs:
