/root/repo/target/release/deps/repro-a5b941c244f0fb1d.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-a5b941c244f0fb1d: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
