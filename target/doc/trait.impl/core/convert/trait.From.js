(function() {
    const implementors = Object.fromEntries([["milp",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/convert/trait.From.html\" title=\"trait core::convert::From\">From</a>&lt;<a class=\"primitive\" href=\"https://doc.rust-lang.org/1.95.0/std/primitive.f64.html\">f64</a>&gt; for <a class=\"struct\" href=\"milp/struct.LinExpr.html\" title=\"struct milp::LinExpr\">LinExpr</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/convert/trait.From.html\" title=\"trait core::convert::From\">From</a>&lt;<a class=\"struct\" href=\"milp/struct.Var.html\" title=\"struct milp::Var\">Var</a>&gt; for <a class=\"struct\" href=\"milp/struct.LinExpr.html\" title=\"struct milp::LinExpr\">LinExpr</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[699]}