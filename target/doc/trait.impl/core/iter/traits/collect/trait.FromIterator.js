(function() {
    const implementors = Object.fromEntries([["letdma_model",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/iter/traits/collect/trait.FromIterator.html\" title=\"trait core::iter::traits::collect::FromIterator\">FromIterator</a>&lt;<a class=\"struct\" href=\"letdma_model/transfer/struct.DmaTransfer.html\" title=\"struct letdma_model::transfer::DmaTransfer\">DmaTransfer</a>&gt; for <a class=\"struct\" href=\"letdma_model/transfer/struct.TransferSchedule.html\" title=\"struct letdma_model::transfer::TransferSchedule\">TransferSchedule</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[528]}