(function() {
    const implementors = Object.fromEntries([["letdma_model",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/arith/trait.SubAssign.html\" title=\"trait core::ops::arith::SubAssign\">SubAssign</a> for <a class=\"struct\" href=\"letdma_model/time/struct.TimeNs.html\" title=\"struct letdma_model::time::TimeNs\">TimeNs</a>",0]]],["milp",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/arith/trait.SubAssign.html\" title=\"trait core::ops::arith::SubAssign\">SubAssign</a> for <a class=\"struct\" href=\"milp/struct.LinExpr.html\" title=\"struct milp::LinExpr\">LinExpr</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[309,278]}