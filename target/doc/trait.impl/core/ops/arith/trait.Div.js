(function() {
    const implementors = Object.fromEntries([["letdma_model",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/arith/trait.Div.html\" title=\"trait core::ops::arith::Div\">Div</a> for <a class=\"struct\" href=\"letdma_model/time/struct.TimeNs.html\" title=\"struct letdma_model::time::TimeNs\">TimeNs</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[291]}