//! Cross-crate consistency: the closed-form latency model (`letdma-model`),
//! the optimizer's reported latencies (`letdma-opt`) and the discrete-event
//! simulator (`letdma-sim`) must agree on random workloads.

use letdma::model::conformance::{verify, VerifyOptions};
use letdma::opt::heuristic_solution;
use letdma::sim::{simulate, Approach, SimConfig};
use letdma::waters::gen::{generate, GenConfig};

#[test]
fn three_views_of_latency_agree_on_random_workloads() {
    for seed in 0..12u64 {
        let system = generate(&GenConfig {
            cores: 2 + (seed % 2) as u16,
            tasks: 4 + (seed % 4) as usize,
            labels: 3 + (seed % 5) as usize,
            seed,
            ..GenConfig::default()
        });
        let Ok(solution) = heuristic_solution(&system, false) else {
            // Property-3 or deadline issues are legitimate for random
            // workloads; skip those seeds (the heuristic never fails on
            // Constraints 1–8).
            continue;
        };

        // View 1: the optimizer's own latencies.
        let opt_latencies = &solution.latencies;
        // View 2: the closed-form schedule evaluation.
        let closed_form = solution.schedule.worst_case_latencies(&system);
        // View 3: the discrete-event simulator.
        let report = simulate(
            &system,
            Some(&solution.schedule),
            &SimConfig::for_approach(Approach::ProposedDma),
        )
        .unwrap();

        for task in system.tasks() {
            let id = task.id();
            assert_eq!(
                opt_latencies.get(&id).copied().unwrap_or_default(),
                closed_form[&id],
                "seed {seed}: optimizer vs closed form for {}",
                task.name()
            );
            assert_eq!(
                report.latency(id),
                closed_form[&id],
                "seed {seed}: simulator vs closed form for {}",
                task.name()
            );
        }
    }
}

#[test]
fn heuristic_solutions_always_conform_on_random_workloads() {
    let mut checked = 0;
    for seed in 100..130u64 {
        let system = generate(&GenConfig {
            cores: 2,
            tasks: 6,
            labels: 8,
            seed,
            ..GenConfig::default()
        });
        if let Ok(solution) = heuristic_solution(&system, false) {
            let violations = verify(
                &system,
                &solution.layout,
                &solution.schedule,
                VerifyOptions::default(),
            );
            assert!(violations.is_empty(), "seed {seed}: {violations:?}");
            checked += 1;
        }
    }
    assert!(
        checked >= 10,
        "too few feasible random workloads ({checked})"
    );
}
