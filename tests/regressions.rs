//! Pinned regression tests for the paper-facing numbers and for the
//! determinism guarantees of the hermetic substrate.
//!
//! These assertions are intentionally coarse: they pin the *claims* the
//! reproduction makes (transfer counts in the Table I ballpark, the Fig. 1
//! latency win, bit-identical reruns) rather than exact solver trajectories
//! that legitimate improvements may change.

use std::time::Duration;

use letdma::core::{Cases, Counter, Rng, SolverStats};
use letdma::model::{System, SystemBuilder, TimeNs};
use letdma::opt::{heuristic_solution, Objective, OptConfig, Optimizer};
use letdma::sim::{simulate, Approach, SimConfig};
use letdma::waters::gen::{generate, GenConfig};
use letdma::waters::waters_system;

/// The constructive heuristic on the WATERS 2019 case study stays within
/// the paper's OBJ-DMAT ballpark: at most 15 DMA transfers (Table I reports
/// 15 for α = 0.2; the heuristic groups by (memory, direction, instant
/// class) and must not regress past that).
#[test]
fn waters_heuristic_transfer_count_pinned() {
    let (system, _) = waters_system().expect("case study builds");
    let solution = heuristic_solution(&system, false).expect("heuristic feasible");
    assert!(
        solution.num_transfers() <= 15,
        "WATERS heuristic now needs {} transfers (> 15): grouping regressed",
        solution.num_transfers()
    );
}

/// The Fig. 1 claim as a pinned ratio: under OBJ-DEL the latency-sensitive
/// consumer τ₂ becomes ready at least 3× earlier than under the Giotto
/// ordering, which schedules the two bulky 48 KiB transfers first.
#[test]
fn fig1_tau2_latency_improvement_pinned() {
    let mut b = SystemBuilder::new(2);
    let t1 = b.task("tau1").period_ms(5).core_index(0).add().unwrap();
    let t3 = b.task("tau3").period_ms(10).core_index(0).add().unwrap();
    let t5 = b.task("tau5").period_ms(10).core_index(0).add().unwrap();
    let t2 = b.task("tau2").period_ms(5).core_index(1).add().unwrap();
    let t4 = b.task("tau4").period_ms(10).core_index(1).add().unwrap();
    let t6 = b.task("tau6").period_ms(10).core_index(1).add().unwrap();
    b.label("l1").size(256).writer(t1).reader(t2).add().unwrap();
    b.label("l2")
        .size(48 * 1024)
        .writer(t3)
        .reader(t4)
        .add()
        .unwrap();
    b.label("l3")
        .size(48 * 1024)
        .writer(t5)
        .reader(t6)
        .add()
        .unwrap();
    let system = b.build().unwrap();

    let solution = Optimizer::new(&system)
        .objective(Objective::MinDelayRatio)
        .time_limit(Duration::from_secs(20))
        .run()
        .expect("Fig. 1 example solves");
    let proposed = simulate(
        &system,
        Some(&solution.schedule),
        &SimConfig::for_approach(Approach::ProposedDma),
    )
    .unwrap();
    let giotto = simulate(
        &system,
        None,
        &SimConfig::for_approach(Approach::GiottoDmaA),
    )
    .unwrap();

    let p = proposed.latency(t2);
    let g = giotto.latency(t2);
    assert!(p > TimeNs::ZERO, "τ₂ must actually communicate");
    assert!(
        g.as_ns() >= 3 * p.as_ns(),
        "τ₂ improvement regressed: proposed {p} vs Giotto {g}"
    );
}

/// Same seed ⇒ byte-identical generated workload, across independent
/// generator invocations (the whole point of the in-tree PRNG: no
/// platform- or version-dependent streams).
#[test]
fn workload_generation_is_deterministic() {
    let cfg = GenConfig {
        cores: 3,
        tasks: 9,
        labels: 12,
        seed: 0x5EED_CAFE,
        ..GenConfig::default()
    };
    let a = generate(&cfg);
    let b = generate(&cfg);
    assert_eq!(a, b, "same seed must yield identical systems");
    let different = generate(&GenConfig {
        seed: cfg.seed + 1,
        ..cfg
    });
    assert_ne!(a, different, "seed must actually matter");
}

/// Same model, same options ⇒ identical solver trajectory: pivot counts,
/// node counts and the incumbent timeline all match between two runs. This
/// is what makes `--stats` output (and any bug report built on it)
/// reproducible.
#[test]
fn solver_trajectory_is_deterministic() {
    let cfg = GenConfig {
        cores: 2,
        tasks: 6,
        labels: 4,
        seed: 77,
        ..GenConfig::default()
    };
    let run = || {
        let system = generate(&cfg);
        let mut stats = SolverStats::default();
        // No time limit: wall-clock cutoffs are the one legitimate source
        // of run-to-run divergence, so the trajectory comparison must be
        // bounded by nodes only.
        let config = OptConfig::new()
            .with_objective(Objective::MinTransfers)
            .without_time_limit()
            .with_node_limit(100);
        let solution = Optimizer::new(&system)
            .config(config)
            .instrument(&mut stats)
            .run()
            .expect("feasible");
        (solution.num_transfers(), stats)
    };
    let (transfers_a, stats_a) = run();
    let (transfers_b, stats_b) = run();
    assert_eq!(transfers_a, transfers_b);
    for counter in [
        Counter::SimplexIterations,
        Counter::Pivots,
        Counter::BoundFlips,
        Counter::Refactorizations,
        Counter::LpSolves,
        Counter::Nodes,
        Counter::Incumbents,
    ] {
        assert_eq!(
            stats_a.counter(counter),
            stats_b.counter(counter),
            "{} diverged between identical runs",
            counter.name()
        );
    }
    let timeline = |s: &SolverStats| -> Vec<(u64, String)> {
        s.incumbents()
            .iter()
            .map(|r| (r.nodes, format!("{:.9}", r.objective)))
            .collect()
    };
    assert_eq!(
        timeline(&stats_a),
        timeline(&stats_b),
        "incumbent timeline diverged between identical runs"
    );
}

/// Runs one node-limited solve with warm (dual-simplex) node re-solves on
/// or off and returns everything the byte-identity claim covers: layout,
/// schedule, exact objective bits, node count and the incumbent timeline.
/// Deliberately *excluded*: iteration/LP-solve counters (warmth exists to
/// change those) and node-event labels (a warm certificate may label an
/// infeasible-and-fathomable node `fathomed-by-bound` where cold says
/// `infeasible` — see DESIGN.md §"Warm-started node re-solves").
fn warm_cold_fingerprint(
    system: &System,
    objective: Objective,
    node_limit: u64,
    warm_basis: bool,
) -> (String, u64, Vec<(u64, u64)>) {
    let mut stats = SolverStats::default();
    let config = OptConfig::new()
        .with_objective(objective)
        .without_time_limit()
        .with_node_limit(node_limit)
        .with_warm_basis(warm_basis);
    let solution = Optimizer::new(system)
        .config(config)
        .instrument(&mut stats)
        .run()
        .expect("feasible");
    let fingerprint = format!(
        "{:?}|{:?}|{:?}",
        solution.layout,
        solution.schedule,
        solution.objective_value.map(f64::to_bits),
    );
    let timeline: Vec<(u64, u64)> = stats
        .incumbents()
        .iter()
        .map(|r| (r.nodes, r.objective.to_bits()))
        .collect();
    let (warm_attempts, dual_iterations) = (
        stats.counter(Counter::WarmAttempts),
        stats.counter(Counter::DualIterations),
    );
    if warm_basis {
        assert_eq!(
            stats.counter(Counter::WarmFathoms)
                + stats.counter(Counter::WarmInfeasible)
                + stats.counter(Counter::WarmFallbacks),
            warm_attempts,
            "every warm attempt must end in exactly one outcome"
        );
    } else {
        assert_eq!(warm_attempts, 0, "cold run must not attempt warm re-solves");
        assert_eq!(
            dual_iterations, 0,
            "cold run must not spend dual iterations"
        );
    }
    (fingerprint, stats.counter(Counter::Nodes), timeline)
}

/// Warm (dual-simplex) node re-solves are a pure work-saver: on the WATERS
/// case study the warm and cold searches produce byte-identical layouts,
/// schedules, objective bits, node counts and incumbent timelines.
#[test]
fn waters_warm_resolves_match_cold_bit_for_bit() {
    let (system, _) = waters_system().expect("case study builds");
    let warm = warm_cold_fingerprint(&system, Objective::MinTransfers, 8, true);
    let cold = warm_cold_fingerprint(&system, Objective::MinTransfers, 8, false);
    assert_eq!(warm, cold, "warm re-solves changed the WATERS trajectory");
}

/// The same byte-identity over a seeded corpus of generated workloads
/// (replay a failure with `LETDMA_CASE_SEED`; scale up with
/// `LETDMA_CASES`).
#[test]
fn generated_corpus_warm_resolves_match_cold_bit_for_bit() {
    Cases::new("warm_cold_identity", 6).run(|rng| {
        let cfg = GenConfig {
            cores: 2,
            tasks: 5 + (rng.next_u64() % 3) as usize,
            labels: 3 + (rng.next_u64() % 4) as usize,
            seed: rng.next_u64(),
            ..GenConfig::default()
        };
        let system = generate(&cfg);
        let warm = warm_cold_fingerprint(&system, Objective::MinTransfers, 60, true);
        let cold = warm_cold_fingerprint(&system, Objective::MinTransfers, 60, false);
        assert_eq!(
            warm, cold,
            "warm re-solves changed the trajectory for seed {:#x}",
            cfg.seed
        );
    });
}
