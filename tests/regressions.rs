//! Pinned regression tests for the paper-facing numbers and for the
//! determinism guarantees of the hermetic substrate.
//!
//! These assertions are intentionally coarse: they pin the *claims* the
//! reproduction makes (transfer counts in the Table I ballpark, the Fig. 1
//! latency win, bit-identical reruns) rather than exact solver trajectories
//! that legitimate improvements may change.

use std::time::Duration;

use letdma::core::{Counter, SolverStats};
use letdma::model::{SystemBuilder, TimeNs};
use letdma::opt::{heuristic_solution, Objective, OptConfig, Optimizer};
use letdma::sim::{simulate, Approach, SimConfig};
use letdma::waters::gen::{generate, GenConfig};
use letdma::waters::waters_system;

/// The constructive heuristic on the WATERS 2019 case study stays within
/// the paper's OBJ-DMAT ballpark: at most 15 DMA transfers (Table I reports
/// 15 for α = 0.2; the heuristic groups by (memory, direction, instant
/// class) and must not regress past that).
#[test]
fn waters_heuristic_transfer_count_pinned() {
    let (system, _) = waters_system().expect("case study builds");
    let solution = heuristic_solution(&system, false).expect("heuristic feasible");
    assert!(
        solution.num_transfers() <= 15,
        "WATERS heuristic now needs {} transfers (> 15): grouping regressed",
        solution.num_transfers()
    );
}

/// The Fig. 1 claim as a pinned ratio: under OBJ-DEL the latency-sensitive
/// consumer τ₂ becomes ready at least 3× earlier than under the Giotto
/// ordering, which schedules the two bulky 48 KiB transfers first.
#[test]
fn fig1_tau2_latency_improvement_pinned() {
    let mut b = SystemBuilder::new(2);
    let t1 = b.task("tau1").period_ms(5).core_index(0).add().unwrap();
    let t3 = b.task("tau3").period_ms(10).core_index(0).add().unwrap();
    let t5 = b.task("tau5").period_ms(10).core_index(0).add().unwrap();
    let t2 = b.task("tau2").period_ms(5).core_index(1).add().unwrap();
    let t4 = b.task("tau4").period_ms(10).core_index(1).add().unwrap();
    let t6 = b.task("tau6").period_ms(10).core_index(1).add().unwrap();
    b.label("l1").size(256).writer(t1).reader(t2).add().unwrap();
    b.label("l2")
        .size(48 * 1024)
        .writer(t3)
        .reader(t4)
        .add()
        .unwrap();
    b.label("l3")
        .size(48 * 1024)
        .writer(t5)
        .reader(t6)
        .add()
        .unwrap();
    let system = b.build().unwrap();

    let solution = Optimizer::new(&system)
        .objective(Objective::MinDelayRatio)
        .time_limit(Duration::from_secs(20))
        .run()
        .expect("Fig. 1 example solves");
    let proposed = simulate(
        &system,
        Some(&solution.schedule),
        &SimConfig::for_approach(Approach::ProposedDma),
    )
    .unwrap();
    let giotto = simulate(
        &system,
        None,
        &SimConfig::for_approach(Approach::GiottoDmaA),
    )
    .unwrap();

    let p = proposed.latency(t2);
    let g = giotto.latency(t2);
    assert!(p > TimeNs::ZERO, "τ₂ must actually communicate");
    assert!(
        g.as_ns() >= 3 * p.as_ns(),
        "τ₂ improvement regressed: proposed {p} vs Giotto {g}"
    );
}

/// Same seed ⇒ byte-identical generated workload, across independent
/// generator invocations (the whole point of the in-tree PRNG: no
/// platform- or version-dependent streams).
#[test]
fn workload_generation_is_deterministic() {
    let cfg = GenConfig {
        cores: 3,
        tasks: 9,
        labels: 12,
        seed: 0x5EED_CAFE,
        ..GenConfig::default()
    };
    let a = generate(&cfg);
    let b = generate(&cfg);
    assert_eq!(a, b, "same seed must yield identical systems");
    let different = generate(&GenConfig {
        seed: cfg.seed + 1,
        ..cfg
    });
    assert_ne!(a, different, "seed must actually matter");
}

/// Same model, same options ⇒ identical solver trajectory: pivot counts,
/// node counts and the incumbent timeline all match between two runs. This
/// is what makes `--stats` output (and any bug report built on it)
/// reproducible.
#[test]
fn solver_trajectory_is_deterministic() {
    let cfg = GenConfig {
        cores: 2,
        tasks: 6,
        labels: 4,
        seed: 77,
        ..GenConfig::default()
    };
    let run = || {
        let system = generate(&cfg);
        let mut stats = SolverStats::default();
        // No time limit: wall-clock cutoffs are the one legitimate source
        // of run-to-run divergence, so the trajectory comparison must be
        // bounded by nodes only.
        let config = OptConfig::new()
            .with_objective(Objective::MinTransfers)
            .without_time_limit()
            .with_node_limit(100);
        let solution = Optimizer::new(&system)
            .config(config)
            .instrument(&mut stats)
            .run()
            .expect("feasible");
        (solution.num_transfers(), stats)
    };
    let (transfers_a, stats_a) = run();
    let (transfers_b, stats_b) = run();
    assert_eq!(transfers_a, transfers_b);
    for counter in [
        Counter::SimplexIterations,
        Counter::Pivots,
        Counter::BoundFlips,
        Counter::Refactorizations,
        Counter::LpSolves,
        Counter::Nodes,
        Counter::Incumbents,
    ] {
        assert_eq!(
            stats_a.counter(counter),
            stats_b.counter(counter),
            "{} diverged between identical runs",
            counter.name()
        );
    }
    let timeline = |s: &SolverStats| -> Vec<(u64, String)> {
        s.incumbents()
            .iter()
            .map(|r| (r.nodes, format!("{:.9}", r.objective)))
            .collect()
    };
    assert_eq!(
        timeline(&stats_a),
        timeline(&stats_b),
        "incumbent timeline diverged between identical runs"
    );
}
