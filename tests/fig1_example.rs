//! Integration test reproducing the paper's Fig. 1 claim: with the proposed
//! protocol a latency-sensitive consumer (τ₂) becomes ready strictly earlier
//! than under the Giotto ordering, because its small communication is
//! scheduled ahead of the bulky unrelated ones.

use letdma::model::{SystemBuilder, TimeNs};
use letdma::opt::{Objective, Optimizer};
use letdma::sim::{simulate, Approach, SimConfig};
use std::time::Duration;

#[test]
fn tau2_ready_much_earlier_than_giotto() {
    // τ1, τ3, τ5 on P1; τ2, τ4, τ6 on P2 — the shape of Fig. 1.
    let mut b = SystemBuilder::new(2);
    let t1 = b.task("tau1").period_ms(5).core_index(0).add().unwrap();
    let t3 = b.task("tau3").period_ms(10).core_index(0).add().unwrap();
    let t5 = b.task("tau5").period_ms(10).core_index(0).add().unwrap();
    let t2 = b.task("tau2").period_ms(5).core_index(1).add().unwrap();
    let t4 = b.task("tau4").period_ms(10).core_index(1).add().unwrap();
    let t6 = b.task("tau6").period_ms(10).core_index(1).add().unwrap();
    b.label("l1").size(256).writer(t1).reader(t2).add().unwrap();
    b.label("l2")
        .size(48 * 1024)
        .writer(t3)
        .reader(t4)
        .add()
        .unwrap();
    b.label("l3")
        .size(48 * 1024)
        .writer(t5)
        .reader(t6)
        .add()
        .unwrap();
    let system = b.build().unwrap();

    let solution = Optimizer::new(&system)
        .objective(Objective::MinDelayRatio)
        .time_limit(Duration::from_secs(20))
        .run()
        .unwrap();

    let proposed = simulate(
        &system,
        Some(&solution.schedule),
        &SimConfig::for_approach(Approach::ProposedDma),
    )
    .unwrap();
    let giotto = simulate(
        &system,
        None,
        &SimConfig::for_approach(Approach::GiottoDmaA),
    )
    .unwrap();

    // τ2 must be at least 3× faster to data than under Giotto (in the
    // paper the improvement for such tasks reaches ~98 %).
    let p = proposed.latency(t2);
    let g = giotto.latency(t2);
    assert!(p > TimeNs::ZERO && g > TimeNs::ZERO);
    assert!(
        p.as_ns() * 3 <= g.as_ns(),
        "τ2: proposed {p} vs giotto {g} — expected ≥3× improvement"
    );

    // And nobody is ever *worse* off.
    for task in system.tasks() {
        assert!(
            proposed.latency(task.id()) <= giotto.latency(task.id()),
            "{} worse under proposed",
            task.name()
        );
    }
}
