//! End-to-end pipeline on the WATERS 2019 case study: sensitivity analysis
//! → optimization → conformance → simulation of all four approaches.

use letdma::analysis::{apply_gammas, derive_gammas, let_task_segments};
use letdma::model::conformance::{verify, VerifyOptions};
use letdma::model::TimeNs;
use letdma::opt::{heuristic_solution, Objective, Optimizer};
use letdma::sim::{simulate, Approach, SimConfig};
use letdma::waters::waters_system;
use std::time::Duration;

#[test]
fn waters_pipeline_alpha30() {
    let (mut system, tasks) = waters_system().unwrap();

    // Sensitivity procedure with LET-task interference from the heuristic
    // schedule.
    let warm = heuristic_solution(&system, false).unwrap();
    let segments = let_task_segments(&system, &warm.schedule);
    let sens = derive_gammas(&system, 30, &segments).unwrap();
    assert!(sens.schedulable, "α = 0.3 must be schedulable");
    apply_gammas(&mut system, &sens);

    // Optimize under the derived deadlines.
    let solution = Optimizer::new(&system)
        .objective(Objective::MinDelayRatio)
        .time_limit(Duration::from_secs(20))
        .run()
        .unwrap();
    let violations = verify(
        &system,
        &solution.layout,
        &solution.schedule,
        VerifyOptions::default(),
    );
    assert!(violations.is_empty(), "{violations:?}");

    // Simulate the four approaches of §VII.
    let proposed = simulate(
        &system,
        Some(&solution.schedule),
        &SimConfig::for_approach(Approach::ProposedDma),
    )
    .unwrap();
    assert!(proposed.is_clean(), "proposed protocol must be clean");
    let cpu = simulate(&system, None, &SimConfig::for_approach(Approach::GiottoCpu)).unwrap();
    let dma_a = simulate(
        &system,
        None,
        &SimConfig::for_approach(Approach::GiottoDmaA),
    )
    .unwrap();
    let dma_b = simulate(
        &system,
        Some(&solution.schedule),
        &SimConfig::for_approach(Approach::GiottoDmaB),
    )
    .unwrap();

    // Fig. 2 shape: the proposed approach is never worse than any baseline,
    // and short-period tasks (DASM, CAN) see large improvements vs the
    // DMA-A baseline.
    for &task in &tasks.figure2_order() {
        let p = proposed.latency(task);
        for (name, report) in [("cpu", &cpu), ("dma-a", &dma_a), ("dma-b", &dma_b)] {
            assert!(
                p <= report.latency(task),
                "{}: proposed {p} worse than {name} {}",
                system.task(task).name(),
                report.latency(task)
            );
        }
    }
    for critical in [tasks.dasm, tasks.can] {
        let p = proposed.latency(critical).as_ns();
        let a = dma_a.latency(critical).as_ns();
        assert!(
            p * 2 <= a,
            "{}: expected ≥2× improvement vs DMA-A ({p} vs {a})",
            system.task(critical).name()
        );
    }

    // The optimizer honored every acquisition deadline.
    for task in system.tasks() {
        if let Some(gamma) = task.acquisition_deadline() {
            assert!(solution.latency(task.id()) <= gamma);
        }
    }
}

#[test]
fn waters_alpha_sweep_shape() {
    // §VII: small α are the hard cases. We require: (a) large α values are
    // schedulable and solvable; (b) feasibility is monotone in α for the
    // heuristic-fallback path (γ grows with α).
    let (system, _) = waters_system().unwrap();
    let warm = heuristic_solution(&system, false).unwrap();
    let segments = let_task_segments(&system, &warm.schedule);

    let mut feasible_alphas = Vec::new();
    for alpha in [10u32, 20, 30, 40, 50] {
        let (mut sys, _) = waters_system().unwrap();
        let sens = derive_gammas(&sys, alpha, &segments).unwrap();
        if !sens.schedulable {
            continue;
        }
        apply_gammas(&mut sys, &sens);
        if Optimizer::new(&sys)
            .time_limit(Duration::from_secs(10))
            .run()
            .is_ok()
        {
            feasible_alphas.push(alpha);
        }
    }
    // Large α must be feasible; and feasibility must be upward closed.
    assert!(feasible_alphas.contains(&40));
    assert!(feasible_alphas.contains(&50));
    for w in feasible_alphas.windows(2) {
        assert!(w[0] < w[1]);
    }
}

#[test]
fn waters_heuristic_latencies_bounded_by_period() {
    // Sanity: with the paper's cost model, every data-acquisition latency
    // is far below the period (otherwise the LET schedule would be useless).
    let (system, _) = waters_system().unwrap();
    let sol = heuristic_solution(&system, false).unwrap();
    for task in system.tasks() {
        let l = sol.latency(task.id());
        assert!(
            l * 2 < task.period(),
            "{}: latency {l} too close to period {}",
            task.name(),
            task.period()
        );
    }
    let _ = TimeNs::ZERO;
}
