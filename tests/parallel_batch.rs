//! Regression: batch solving (`Batch` / `optimize_batch`) must return
//! exactly what a sequential loop of `Optimizer` runs returns, scenario by
//! scenario, at any worker-thread count. The only tolerated differences are
//! wall-clock measurements (`elapsed`) and the per-worker load breakdown
//! (which worker happened to grab which node) — everything decision-
//! relevant (layout, schedule, latencies, search counters) is pinned.
//!
//! Cross-scenario root-basis reuse is disabled here: with it on, a
//! same-shape sibling that imports the donor's root basis follows a
//! different (still deterministic) trajectory than a cold solve. The
//! reuse-on guarantees — identical optima, thread-count invariance,
//! Properties 1–3 — are pinned separately in `cross_scenario_reuse.rs`.

use letdma::model::{System, SystemBuilder};
use letdma::opt::{
    optimize_batch, Batch, LetDmaSolution, Objective, OptConfig, Optimizer, Provenance,
};
use std::time::Duration;

/// Zeroes the fields that legitimately vary run to run: wall-clock time and
/// the timing-dependent worker-load breakdown.
fn scrub(mut s: LetDmaSolution) -> LetDmaSolution {
    if let Provenance::Milp { stats, .. } = &mut s.provenance {
        stats.elapsed = Duration::ZERO;
        stats.workers.clear();
    }
    s
}

/// A small two-core pipeline; `flip` varies the label sizes so the
/// scenarios in a batch are genuinely different problems.
fn pipeline_system(flip: bool) -> System {
    let mut b = SystemBuilder::new(2);
    let (a, c) = if flip { (2_048, 256) } else { (256, 2_048) };
    let p1 = b.task("p1").period_ms(5).core_index(0).add().unwrap();
    let c1 = b.task("c1").period_ms(5).core_index(1).add().unwrap();
    let p2 = b.task("p2").period_ms(10).core_index(0).add().unwrap();
    let c2 = b.task("c2").period_ms(10).core_index(1).add().unwrap();
    b.label("a").size(a).writer(p1).reader(c1).add().unwrap();
    b.label("b").size(512).writer(p1).reader(c2).add().unwrap();
    b.label("c").size(c).writer(p2).reader(c1).add().unwrap();
    b.build().unwrap()
}

fn scenarios() -> Vec<(System, OptConfig)> {
    // No time limits: every scenario must run to a deterministic stopping
    // point (proved optimum / first incumbent), otherwise the comparison
    // against the sequential loop would depend on machine load. Reuse off:
    // see the module docs.
    let base = || {
        OptConfig::new()
            .without_time_limit()
            .with_reuse_basis(false)
    };
    vec![
        (
            pipeline_system(false),
            base().with_objective(Objective::MinTransfers),
        ),
        (
            pipeline_system(true),
            base().with_objective(Objective::MinTransfers),
        ),
        (pipeline_system(false), base()),
        (pipeline_system(true), base()),
    ]
}

/// The reference result: one `Optimizer` run per scenario, in order.
fn sequential_reference() -> Vec<LetDmaSolution> {
    scenarios()
        .into_iter()
        .map(|(system, config)| {
            scrub(
                Optimizer::new(&system)
                    .config(config)
                    .run()
                    .expect("reference scenario must solve"),
            )
        })
        .collect()
}

#[test]
fn optimize_batch_matches_the_sequential_loop() {
    let reference = sequential_reference();
    let outcomes = optimize_batch(scenarios());
    assert_eq!(outcomes.len(), reference.len());
    for (i, (outcome, expected)) in outcomes.into_iter().zip(reference).enumerate() {
        let got = scrub(outcome.result.unwrap_or_else(|e| {
            panic!("scenario {i} failed in the batch but not sequentially: {e}")
        }));
        assert_eq!(
            got, expected,
            "scenario {i} diverged from the sequential loop"
        );
    }
}

#[test]
fn batch_is_invariant_in_the_worker_thread_count() {
    let reference = sequential_reference();
    for threads in [1usize, 2, 8] {
        let mut batch = Batch::new().threads(threads);
        for (system, config) in scenarios() {
            batch = batch.scenario(system, config);
        }
        let outcomes = batch.run();
        assert_eq!(outcomes.len(), reference.len());
        for (i, (outcome, expected)) in outcomes.into_iter().zip(reference.iter()).enumerate() {
            let got = scrub(outcome.result.expect("batch scenario must solve"));
            assert_eq!(
                &got, expected,
                "scenario {i} diverged at {threads} worker threads"
            );
        }
    }
}

#[test]
fn batch_reports_per_scenario_stats() {
    // Each outcome carries its own deterministic shard: node and LP-solve
    // counters must agree with the stats embedded in the solution itself.
    let mut batch = Batch::new().threads(2);
    for (system, config) in scenarios() {
        batch = batch.scenario(system, config);
    }
    for (i, outcome) in batch.run().into_iter().enumerate() {
        let solution = outcome.result.expect("scenario must solve");
        if let Provenance::Milp { stats, .. } = &solution.provenance {
            use letdma::core::Counter;
            assert_eq!(
                outcome.stats.counter(Counter::Nodes),
                stats.nodes,
                "scenario {i}: shard node count disagrees with the solution stats"
            );
        }
    }
}
