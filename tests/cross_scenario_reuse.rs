//! The cross-scenario root-basis reuse differential (DESIGN.md
//! §"Warm-start architecture").
//!
//! `Batch` runs with reuse on (the default) elect a donor per shape group
//! and warm-start every sibling's root LP from the donor's optimal basis.
//! That changes *work*, never *answers*: this file pins, over a WATERS
//! α-sweep and a seeded random corpus, at 1 and 4 batch workers,
//!
//! 1. **identical optima** — every scenario solved to proved optimality
//!    reports bit-identical objective values with reuse on and off;
//! 2. **conformance** — every reuse-on result passes the independent
//!    Properties 1–3 / contiguity / deadline checker;
//! 3. **byte-identity when disabled** — with `reuse_basis(false)` the
//!    batch reproduces the sequential cold loop exactly, field for field
//!    (the stronger pin that `tests/parallel_batch.rs` applies to the
//!    general batch machinery).
//!
//! Thread counts are exercised through `Batch::threads`, never by mutating
//! `LETDMA_THREADS` — env mutation would race the other tests in this
//! binary.

use letdma::analysis::{apply_gammas, derive_gammas, let_task_segments};
use letdma::core::Counter;
use letdma::model::conformance::{verify, VerifyOptions};
use letdma::model::{System, SystemBuilder};
use letdma::opt::{
    heuristic_solution, Batch, LetDmaSolution, Objective, OptConfig, Optimizer, Provenance,
};
use std::time::Duration;

/// Zeroes wall-clock time and the timing-dependent worker-load breakdown —
/// the only fields allowed to differ between a batch solve and the same
/// solve run sequentially.
fn scrub(mut s: LetDmaSolution) -> LetDmaSolution {
    if let Provenance::Milp { stats, .. } = &mut s.provenance {
        stats.elapsed = Duration::ZERO;
        stats.workers.clear();
    }
    s
}

/// One member of the seeded corpus: a fixed three-task/three-label
/// topology whose periods and label sizes come from the seed table in
/// [`corpus`]. Same topology ⇒ same search-model *shape*; different seeds
/// ⇒ different coefficients — exactly the sibling pattern the reuse
/// planner groups.
fn corpus_scenario(period: u64, sizes: [u64; 3]) -> (System, OptConfig) {
    let mut b = SystemBuilder::new(2);
    let p = b.task("p").period_ms(period).core_index(0).add().unwrap();
    let q = b
        .task("q")
        .period_ms(period * 2)
        .core_index(0)
        .add()
        .unwrap();
    let c = b
        .task("c")
        .period_ms(period * 2)
        .core_index(1)
        .add()
        .unwrap();
    b.label("frame")
        .size(sizes[0])
        .writer(p)
        .reader(c)
        .add()
        .unwrap();
    b.label("state")
        .size(sizes[1])
        .writer(q)
        .reader(c)
        .add()
        .unwrap();
    b.label("ack")
        .size(sizes[2])
        .writer(c)
        .reader(p)
        .add()
        .unwrap();
    (
        b.build().unwrap(),
        OptConfig::new()
            .with_objective(Objective::MinTransfers)
            .without_time_limit()
            .with_threads(1),
    )
}

/// The seeded corpus: three same-shape scenarios with seed-varied periods
/// and label sizes, each solving to proved optimality in well under a
/// second while still running a genuine root LP (hundreds of simplex
/// iterations) — so the first scenario donates and the other two import.
fn corpus() -> Vec<(System, OptConfig)> {
    [
        (5u64, [256u64, 64, 32]),
        (5, [512, 128, 48]),
        (7, [384, 96, 64]),
    ]
    .iter()
    .map(|&(period, sizes)| corpus_scenario(period, sizes))
    .collect()
}

/// The WATERS sweep: the case study at α ∈ {20%, 40%} — same model shape,
/// different γ coefficients, exactly the α-sibling pattern the reuse
/// planner groups. Node-limited so the (large) solves stop at a
/// deterministic point.
fn waters_sweep() -> Vec<(System, OptConfig)> {
    let config = OptConfig::new()
        .with_objective(Objective::MinTransfers)
        .without_time_limit()
        .with_node_limit(3)
        .with_threads(1);
    [20u32, 40]
        .iter()
        .map(|&alpha_pct| {
            let (mut system, _) = letdma::waters::waters_system().unwrap();
            let warm = heuristic_solution(&system, false).expect("heuristic feasible");
            let segments = let_task_segments(&system, &warm.schedule);
            let sens =
                derive_gammas(&system, alpha_pct, &segments).expect("WATERS base schedulable");
            assert!(sens.schedulable, "α = {alpha_pct}% must be schedulable");
            apply_gammas(&mut system, &sens);
            (system, config.clone())
        })
        .collect()
}

fn run_batch(scenarios: Vec<(System, OptConfig)>, threads: usize) -> Vec<LetDmaSolution> {
    scenarios
        .into_iter()
        .fold(Batch::new().threads(threads), |b, (s, c)| b.scenario(s, c))
        .run()
        .into_iter()
        .map(|o| o.result.expect("batch scenario must solve"))
        .collect()
}

/// Reuse on vs. sequential cold over the corpus: identical optima at every
/// worker count, conformance on every reuse-on result, and at least one
/// root import actually landing (otherwise this differential tests
/// nothing).
#[test]
fn corpus_reuse_on_preserves_optima_and_conformance() {
    let cold: Vec<_> = corpus()
        .into_iter()
        .map(|(system, config)| {
            let sol = Optimizer::new(&system)
                .config(config.with_reuse_basis(false))
                .run()
                .expect("cold scenario must solve");
            (system, sol)
        })
        .collect();
    for threads in [1usize, 4] {
        let mut batch = Batch::new().threads(threads);
        for (system, config) in corpus() {
            batch = batch.scenario(system, config);
        }
        let outcomes = batch.run();
        let imports: u64 = outcomes
            .iter()
            .map(|o| o.stats.counter(Counter::CrossScenarioWarmStarts))
            .sum();
        assert!(
            imports > 0,
            "{threads} workers: no root import landed — the differential is vacuous"
        );
        for (i, (outcome, (system, cold))) in outcomes.iter().zip(&cold).enumerate() {
            let sol = outcome.result.as_ref().expect("reuse scenario must solve");
            assert_eq!(
                sol.objective_value.map(f64::to_bits),
                cold.objective_value.map(f64::to_bits),
                "scenario {i} at {threads} workers: reuse changed the optimum"
            );
            assert_eq!(sol.resolution, cold.resolution, "scenario {i}");
            let violations = verify(system, &sol.layout, &sol.schedule, VerifyOptions::default());
            assert!(
                violations.is_empty(),
                "scenario {i} at {threads} workers: {violations:?}"
            );
        }
    }
}

/// Reuse on over the node-limited WATERS sweep: every result conformant,
/// and the batch deterministic in the worker count (donor election is by
/// submission index, beneficiaries block on the donor — scheduling never
/// leaks into the trajectory).
#[test]
fn waters_sweep_reuse_on_is_conformant_and_thread_invariant() {
    let one = run_batch(waters_sweep(), 1);
    let four = run_batch(waters_sweep(), 4);
    assert_eq!(one.len(), four.len());
    for (i, (a, b)) in one.iter().zip(&four).enumerate() {
        assert_eq!(
            scrub(a.clone()),
            scrub(b.clone()),
            "WATERS scenario {i}: 1-worker and 4-worker batches diverged"
        );
    }
    for (i, ((system, _), sol)) in waters_sweep().iter().zip(&one).enumerate() {
        let violations = verify(system, &sol.layout, &sol.schedule, VerifyOptions::default());
        assert!(violations.is_empty(), "WATERS scenario {i}: {violations:?}");
    }
}

/// With reuse disabled the batch is byte-identical to the sequential cold
/// loop on both scenario families, at 1 and 4 workers.
#[test]
fn reuse_off_restores_cold_trajectories() {
    for scenarios in [corpus(), waters_sweep()] {
        let off: Vec<(System, OptConfig)> = scenarios
            .into_iter()
            .map(|(s, c)| (s, c.with_reuse_basis(false)))
            .collect();
        let reference: Vec<_> = off
            .iter()
            .map(|(system, config)| {
                scrub(
                    Optimizer::new(system)
                        .config(config.clone())
                        .run()
                        .expect("reference scenario must solve"),
                )
            })
            .collect();
        for threads in [1usize, 4] {
            let mut batch = Batch::new().threads(threads);
            for (system, config) in off.clone() {
                batch = batch.scenario(system, config);
            }
            for (i, (outcome, expected)) in batch.run().into_iter().zip(&reference).enumerate() {
                let got = scrub(outcome.result.expect("batch scenario must solve"));
                assert_eq!(
                    &got, expected,
                    "scenario {i} at {threads} workers diverged from the cold loop"
                );
            }
        }
    }
}
